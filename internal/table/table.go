// Package table implements the second level of the predictors: target
// tables. The paper's progression from ideal to implementable hardware maps
// to four bounded organizations over 64-bit keys — fully-associative LRU,
// set-associative (1/2/4-way, LRU per set), direct-mapped tagged (1-way),
// and tagless direct-mapped — plus unbounded map-backed tables used for the
// §3 unconstrained experiments and for capacity-miss attribution.
package table

import (
	"fmt"
	"math"
	"math/bits"
)

// Entry is one target-table entry. Beyond the predicted target it carries
// the hysteresis bit of the two-miss update rule (§3.1 "2bc") and the
// confidence counter used for hybrid metaprediction (§6.1). The tag and
// valid bit are managed by the owning table.
// Fields are ordered wide-to-narrow so the struct packs into exactly 24
// bytes with no padding — the dense tables are flat []Entry arrays, and the
// hot loop's cache footprint is 24B × entries.
type Entry struct {
	key uint64
	// Target is the predicted target address.
	Target uint32
	// Next is the predicted address of the next indirect branch (the
	// §8.1 run-ahead extension); zero when unknown.
	Next uint32
	// gen stamps the generation of the owning dense table (Tagless,
	// SetAssoc) that wrote the entry: those tables reset in O(1) by bumping
	// their generation, which makes every older entry read as invalid.
	// List- and map-backed tables leave it zero.
	gen   uint32
	valid bool
	// Hyst is the hysteresis state of the two-miss update rule: nonzero
	// when the previous access to this entry was a misprediction.
	Hyst uint8
	// Conf is the saturating confidence counter (§6.1). Tables reset it
	// to zero when an entry is replaced.
	Conf uint8
	// Chosen is the auxiliary counter of the paper's §8.1 shared-table
	// hybrid: how often this entry's prediction was selected.
	Chosen uint8
}

// Valid reports whether the entry currently holds a prediction.
func (e *Entry) Valid() bool { return e.valid }

// Key returns the full key stored with the entry (the tag).
func (e *Entry) Key() uint64 { return e.key }

// reset prepares the entry for a new key; replacing an entry resets all
// counters (§6.1).
func (e *Entry) reset(key uint64) {
	e.key = key
	e.valid = true
	e.Target = 0
	e.Hyst = 0
	e.Conf = 0
	e.Chosen = 0
	e.Next = 0
}

// Stats is a point-in-time summary of one table's behaviour counters, the
// raw material of the telemetry layer's occupancy/eviction reporting. The
// counters are plain (non-atomic) fields on the tables — a table belongs to
// exactly one simulation lane — and tracking them costs one increment on the
// insert path only, never on the predict path.
type Stats struct {
	// Kind is the table organization ("assoc4", "tagless", ...).
	Kind string `json:"kind"`
	// Capacity is the table size in entries, -1 if unbounded.
	Capacity int `json:"capacity"`
	// Occupancy is the fraction of entries valid at snapshot time
	// (unbounded tables report 1).
	Occupancy float64 `json:"occupancy"`
	// Inserts counts entry allocations (including those that evicted).
	Inserts uint64 `json:"inserts"`
	// Evictions is the subset of Inserts that displaced a live entry.
	Evictions uint64 `json:"evictions"`
	// Resets counts whole-table clears (generation bumps for the dense
	// organizations).
	Resets uint64 `json:"resets"`
}

// add accumulates o into s, keeping Kind/Capacity of the first table and
// averaging occupancy weights by table count at the caller's discretion.
func (s *Stats) add(o Stats) {
	s.Inserts += o.Inserts
	s.Evictions += o.Evictions
	s.Resets += o.Resets
}

// Sub returns s with prev's counters subtracted: the table movement between
// two snapshots of the same table. Occupancy (a point-in-time value) is kept
// from s. Simulation lanes use it to report per-run deltas even when the
// predictor is a reused instance whose lifetime counters span earlier cells.
func (s Stats) Sub(prev Stats) Stats {
	s.Inserts -= prev.Inserts
	s.Evictions -= prev.Evictions
	s.Resets -= prev.Resets
	return s
}

// Merge folds a set of per-table stats into one aggregate: counters sum,
// occupancy averages over the bounded tables, capacity sums (−1 if any
// component is unbounded). It is what a multi-table predictor reports as a
// single per-Result line.
func Merge(stats []Stats) Stats {
	var out Stats
	bounded := 0
	for i, st := range stats {
		if i == 0 {
			out.Kind = st.Kind
		} else if out.Kind != st.Kind {
			out.Kind = "mixed"
		}
		out.add(st)
		if st.Capacity < 0 || out.Capacity < 0 {
			out.Capacity = -1
		} else {
			out.Capacity += st.Capacity
		}
		if st.Capacity >= 0 {
			out.Occupancy += st.Occupancy
			bounded++
		}
	}
	if bounded > 0 {
		out.Occupancy /= float64(bounded)
	} else if len(stats) > 0 {
		out.Occupancy = 1
	}
	return out
}

// Bounded is a prediction table over 64-bit keys. The predictor calls Probe
// first; on nil it may call Insert to allocate an entry (choosing a victim
// if the table is full). Probe updates recency state on a hit.
type Bounded interface {
	// Probe returns the entry for key, or nil if the table has no
	// prediction for it.
	Probe(key uint64) *Entry
	// Insert allocates (possibly by eviction) an entry for key, resets
	// its fields, and returns it. The caller sets Target afterwards.
	Insert(key uint64) *Entry
	// ProbeOrInsert combines Probe and Insert into one table walk: it
	// returns the existing entry for key with found=true (updating recency
	// like Probe), or allocates one like Insert and returns it with
	// found=false (the caller sets Target). Predictor update paths use it
	// to avoid paying two lookups per branch.
	ProbeOrInsert(key uint64) (e *Entry, found bool)
	// Capacity returns the table size in entries, or -1 if unbounded.
	Capacity() int
	// Utilization returns the fraction of entries currently valid
	// (∈ [0,1]); unbounded tables report 1.
	Utilization() float64
	// Victim returns the valid entry that Insert(key) would evict, or nil
	// if the insertion would not displace a valid entry. It does not
	// modify the table; the §8.1 shared-table hybrid consults it before
	// replacing entries.
	Victim(key uint64) *Entry
	// Reset clears all entries.
	Reset()
	// Kind returns a short organization name for reports, e.g. "assoc2".
	Kind() string
	// Stats returns the table's behaviour counters and current occupancy.
	Stats() Stats
	// Counts returns the raw insert/eviction/reset counters without
	// computing occupancy. Unlike Stats — which walks the slot array for
	// utilization — it is cheap enough for per-branch use: the attribution
	// layer reads it around an update to detect whether the insert evicted.
	Counts() (inserts, evictions, resets uint64)
}

func checkPow2(n int, what string) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("table: %s must be a positive power of two, got %d", what, n))
	}
}

// Tagless is a direct-mapped table without tags: the entry selected by the
// low-order key bits is returned whatever pattern wrote it, so different
// patterns interfere — sometimes constructively (§5.2.2).
type Tagless struct {
	slots []Entry
	mask  uint64
	gen   uint32
	stats counters
}

// counters is the shared insert/eviction/reset accounting embedded in every
// table organization.
type counters struct {
	inserts, evictions, resets uint64
}

// counts returns the raw counter values; the Counts methods of the table
// organizations delegate here.
func (c *counters) counts() (inserts, evictions, resets uint64) {
	return c.inserts, c.evictions, c.resets
}

// NewTagless returns a tagless table with the given number of entries
// (a power of two).
func NewTagless(entries int) *Tagless {
	checkPow2(entries, "entries")
	return &Tagless{slots: make([]Entry, entries), mask: uint64(entries - 1)}
}

// Probe returns the slot indexed by key if it holds any prediction. No tag
// comparison is performed.
func (t *Tagless) Probe(key uint64) *Entry {
	e := &t.slots[key&t.mask]
	if !e.valid || e.gen != t.gen {
		return nil
	}
	return e
}

// Insert claims the slot indexed by key.
func (t *Tagless) Insert(key uint64) *Entry {
	e := &t.slots[key&t.mask]
	t.stats.inserts++
	if e.valid && e.gen == t.gen && e.key != key {
		t.stats.evictions++
	}
	e.reset(key)
	e.gen = t.gen
	return e
}

// ProbeOrInsert implements Bounded.
func (t *Tagless) ProbeOrInsert(key uint64) (*Entry, bool) {
	e := &t.slots[key&t.mask]
	if e.valid && e.gen == t.gen {
		return e, true
	}
	e.reset(key)
	e.gen = t.gen
	t.stats.inserts++
	return e, false
}

// Victim implements Bounded.
func (t *Tagless) Victim(key uint64) *Entry {
	e := &t.slots[key&t.mask]
	if !e.valid || e.gen != t.gen {
		return nil
	}
	return e
}

// Capacity implements Bounded.
func (t *Tagless) Capacity() int { return len(t.slots) }

// Utilization implements Bounded.
func (t *Tagless) Utilization() float64 { return utilization(t.slots, t.gen) }

// Reset implements Bounded in O(1): bumping the generation makes every
// current entry read as invalid without touching the slot array. Flush-heavy
// simulations and predictor reuse across sweep cells depend on this being
// cheap. On the (unreachable in practice) 2^32nd reset the generation wraps
// and the slots are cleared for real, so ancient entries can never resurrect.
func (t *Tagless) Reset() {
	t.gen++
	t.stats.resets++
	if t.gen == 0 {
		clear(t.slots)
	}
}

// Kind implements Bounded.
func (t *Tagless) Kind() string { return "tagless" }

// Counts implements Bounded.
func (t *Tagless) Counts() (inserts, evictions, resets uint64) { return t.stats.counts() }

// Stats implements Bounded.
func (t *Tagless) Stats() Stats {
	return Stats{
		Kind: t.Kind(), Capacity: t.Capacity(), Occupancy: t.Utilization(),
		Inserts: t.stats.inserts, Evictions: t.stats.evictions, Resets: t.stats.resets,
	}
}

// SetAssoc is a set-associative table with per-set LRU replacement. Ways=1
// gives a direct-mapped tagged table. Entries within a set are kept in
// recency order (index 0 most recent), which is cheap for the small
// associativities the paper studies (1, 2, 4).
type SetAssoc struct {
	ways      int
	indexBits int
	mask      uint64
	slots     []Entry // sets * ways, set-major
	gen       uint32
	stats     counters
}

// NewSetAssoc returns a table with the given total entries (power of two)
// and associativity (power of two, dividing entries).
func NewSetAssoc(entries, ways int) *SetAssoc {
	checkPow2(entries, "entries")
	checkPow2(ways, "ways")
	if ways > entries {
		panic(fmt.Sprintf("table: ways %d exceeds entries %d", ways, entries))
	}
	sets := entries / ways
	return &SetAssoc{
		ways:      ways,
		indexBits: bits.TrailingZeros(uint(sets)),
		mask:      uint64(sets - 1),
		slots:     make([]Entry, entries),
	}
}

// Ways returns the associativity.
func (t *SetAssoc) Ways() int { return t.ways }

// set returns the slice of ways for key's set.
func (t *SetAssoc) set(key uint64) []Entry {
	i := int(key&t.mask) * t.ways
	return t.slots[i : i+t.ways]
}

// Probe implements Bounded: it compares the full key against each way's tag
// and promotes a hit to most-recently-used.
func (t *SetAssoc) Probe(key uint64) *Entry {
	set := t.set(key)
	for i := range set {
		if set[i].key == key && set[i].valid && set[i].gen == t.gen {
			if i != 0 {
				hit := set[i]
				copy(set[1:i+1], set[:i])
				set[0] = hit
			}
			return &set[0]
		}
	}
	return nil
}

// Insert implements Bounded: the victim is the least recently used way (or
// an invalid way if one exists, which is always the last in recency order).
func (t *SetAssoc) Insert(key uint64) *Entry {
	set := t.set(key)
	victim := set[t.ways-1]
	t.stats.inserts++
	if victim.valid && victim.gen == t.gen {
		t.stats.evictions++
	}
	copy(set[1:], set[:t.ways-1])
	set[0] = victim
	set[0].reset(key)
	set[0].gen = t.gen
	return &set[0]
}

// ProbeOrInsert implements Bounded: one walk of the set either promotes the
// hit to most-recently-used (as Probe would) or claims the LRU way (as
// Insert would).
func (t *SetAssoc) ProbeOrInsert(key uint64) (*Entry, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].key == key && set[i].valid && set[i].gen == t.gen {
			if i != 0 {
				hit := set[i]
				copy(set[1:i+1], set[:i])
				set[0] = hit
			}
			return &set[0], true
		}
	}
	victim := set[t.ways-1]
	t.stats.inserts++
	if victim.valid && victim.gen == t.gen {
		t.stats.evictions++
	}
	copy(set[1:], set[:t.ways-1])
	set[0] = victim
	set[0].reset(key)
	set[0].gen = t.gen
	return &set[0], false
}

// Victim implements Bounded.
func (t *SetAssoc) Victim(key uint64) *Entry {
	set := t.set(key)
	e := &set[t.ways-1]
	if !e.valid || e.gen != t.gen {
		return nil
	}
	return e
}

// Capacity implements Bounded.
func (t *SetAssoc) Capacity() int { return len(t.slots) }

// Utilization implements Bounded.
func (t *SetAssoc) Utilization() float64 { return utilization(t.slots, t.gen) }

// Reset implements Bounded in O(1) by generation bump (see Tagless.Reset).
func (t *SetAssoc) Reset() {
	t.gen++
	t.stats.resets++
	if t.gen == 0 {
		clear(t.slots)
	}
}

// Kind implements Bounded.
func (t *SetAssoc) Kind() string { return fmt.Sprintf("assoc%d", t.ways) }

// Counts implements Bounded.
func (t *SetAssoc) Counts() (inserts, evictions, resets uint64) { return t.stats.counts() }

// Stats implements Bounded.
func (t *SetAssoc) Stats() Stats {
	return Stats{
		Kind: t.Kind(), Capacity: t.Capacity(), Occupancy: t.Utilization(),
		Inserts: t.stats.inserts, Evictions: t.stats.evictions, Resets: t.stats.resets,
	}
}

// FullAssoc is a fully-associative table with true LRU replacement,
// implemented as a hash map plus an intrusive recency list (§5.1).
type FullAssoc struct {
	capacity int
	m        map[uint64]*faNode
	mru, lru *faNode
	stats    counters
}

type faNode struct {
	Entry
	prev, next *faNode
}

// NewFullAssoc returns a fully-associative LRU table with the given
// capacity in entries (any positive count).
func NewFullAssoc(entries int) *FullAssoc {
	if entries <= 0 {
		panic(fmt.Sprintf("table: capacity must be positive, got %d", entries))
	}
	return &FullAssoc{capacity: entries, m: make(map[uint64]*faNode, entries)}
}

func (t *FullAssoc) unlink(n *faNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.mru = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.lru = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *FullAssoc) pushFront(n *faNode) {
	n.next = t.mru
	if t.mru != nil {
		t.mru.prev = n
	}
	t.mru = n
	if t.lru == nil {
		t.lru = n
	}
}

// Probe implements Bounded.
func (t *FullAssoc) Probe(key uint64) *Entry {
	n := t.m[key]
	if n == nil {
		return nil
	}
	if t.mru != n {
		t.unlink(n)
		t.pushFront(n)
	}
	return &n.Entry
}

// Insert implements Bounded, evicting the least recently used entry when the
// table is full.
func (t *FullAssoc) Insert(key uint64) *Entry {
	if n := t.m[key]; n != nil {
		// Defensive: reuse an existing entry rather than duplicating.
		t.unlink(n)
		t.pushFront(n)
		n.Entry.reset(key)
		t.stats.inserts++
		return &n.Entry
	}
	var n *faNode
	t.stats.inserts++
	if len(t.m) >= t.capacity {
		n = t.lru
		t.unlink(n)
		delete(t.m, n.key)
		t.stats.evictions++
	} else {
		n = &faNode{}
	}
	n.Entry.reset(key)
	t.m[key] = n
	t.pushFront(n)
	return &n.Entry
}

// ProbeOrInsert implements Bounded with a single map lookup.
func (t *FullAssoc) ProbeOrInsert(key uint64) (*Entry, bool) {
	if n := t.m[key]; n != nil {
		if t.mru != n {
			t.unlink(n)
			t.pushFront(n)
		}
		return &n.Entry, true
	}
	var n *faNode
	t.stats.inserts++
	if len(t.m) >= t.capacity {
		n = t.lru
		t.unlink(n)
		delete(t.m, n.key)
		t.stats.evictions++
	} else {
		n = &faNode{}
	}
	n.Entry.reset(key)
	t.m[key] = n
	t.pushFront(n)
	return &n.Entry, false
}

// Victim implements Bounded.
func (t *FullAssoc) Victim(key uint64) *Entry {
	if t.m[key] != nil || len(t.m) < t.capacity {
		return nil
	}
	return &t.lru.Entry
}

// Capacity implements Bounded.
func (t *FullAssoc) Capacity() int { return t.capacity }

// Utilization implements Bounded.
func (t *FullAssoc) Utilization() float64 {
	return float64(len(t.m)) / float64(t.capacity)
}

// Reset implements Bounded.
func (t *FullAssoc) Reset() {
	clear(t.m)
	t.mru, t.lru = nil, nil
	t.stats.resets++
}

// Kind implements Bounded.
func (t *FullAssoc) Kind() string { return "fullassoc" }

// Counts implements Bounded.
func (t *FullAssoc) Counts() (inserts, evictions, resets uint64) { return t.stats.counts() }

// Stats implements Bounded.
func (t *FullAssoc) Stats() Stats {
	return Stats{
		Kind: t.Kind(), Capacity: t.Capacity(), Occupancy: t.Utilization(),
		Inserts: t.stats.inserts, Evictions: t.stats.evictions, Resets: t.stats.resets,
	}
}

// Len returns the number of valid entries.
func (t *FullAssoc) Len() int { return len(t.m) }

// Unbounded64 is a map-backed table without capacity limits, used for the
// limited-precision §4 experiments and as the shadow twin that attributes
// capacity and conflict misses (§5.1).
type Unbounded64 struct {
	m     map[uint64]*Entry
	stats counters
}

// NewUnbounded64 returns an empty unbounded table.
func NewUnbounded64() *Unbounded64 {
	return &Unbounded64{m: make(map[uint64]*Entry)}
}

// Probe implements Bounded.
func (t *Unbounded64) Probe(key uint64) *Entry { return t.m[key] }

// Insert implements Bounded.
func (t *Unbounded64) Insert(key uint64) *Entry {
	t.stats.inserts++
	e := t.m[key]
	if e == nil {
		e = &Entry{}
		t.m[key] = e
	}
	e.reset(key)
	return e
}

// ProbeOrInsert implements Bounded.
func (t *Unbounded64) ProbeOrInsert(key uint64) (*Entry, bool) {
	if e := t.m[key]; e != nil {
		return e, true
	}
	e := &Entry{}
	e.reset(key)
	t.m[key] = e
	t.stats.inserts++
	return e, false
}

// Victim implements Bounded: an unbounded table never evicts.
func (t *Unbounded64) Victim(key uint64) *Entry { return nil }

// Capacity implements Bounded (-1: unbounded).
func (t *Unbounded64) Capacity() int { return -1 }

// Utilization implements Bounded.
func (t *Unbounded64) Utilization() float64 { return 1 }

// Reset implements Bounded.
func (t *Unbounded64) Reset() {
	clear(t.m)
	t.stats.resets++
}

// Kind implements Bounded.
func (t *Unbounded64) Kind() string { return "unbounded" }

// Counts implements Bounded.
func (t *Unbounded64) Counts() (inserts, evictions, resets uint64) { return t.stats.counts() }

// Stats implements Bounded.
func (t *Unbounded64) Stats() Stats {
	return Stats{
		Kind: t.Kind(), Capacity: -1, Occupancy: 1,
		Inserts: t.stats.inserts, Resets: t.stats.resets,
	}
}

// Len returns the number of patterns stored (the paper quotes pattern counts
// per path length, §5.1).
func (t *Unbounded64) Len() int { return len(t.m) }

// UnboundedStr is the unbounded table over exact byte-string keys used by
// the §3 full-precision predictors, where keys (selector + p full targets)
// exceed 64 bits.
type UnboundedStr struct {
	m     map[string]*Entry
	stats counters
}

// NewUnboundedStr returns an empty table.
func NewUnboundedStr() *UnboundedStr {
	return &UnboundedStr{m: make(map[string]*Entry)}
}

// Probe returns the entry for key or nil. The []byte key avoids allocation
// on lookups.
func (t *UnboundedStr) Probe(key []byte) *Entry { return t.m[string(key)] }

// Insert allocates an entry for key.
func (t *UnboundedStr) Insert(key []byte) *Entry {
	t.stats.inserts++
	e := t.m[string(key)]
	if e == nil {
		e = &Entry{}
		t.m[string(key)] = e
	}
	e.reset(0)
	return e
}

// ProbeOrInsert returns the existing entry for key (found=true) or allocates
// a fresh one (found=false) with a single map lookup on the hit path. The
// map is indexed by string(key) directly so probes never allocate; only a
// genuine insertion materializes the key string.
func (t *UnboundedStr) ProbeOrInsert(key []byte) (*Entry, bool) {
	if e := t.m[string(key)]; e != nil {
		return e, true
	}
	e := &Entry{}
	e.reset(0)
	t.m[string(key)] = e
	t.stats.inserts++
	return e, false
}

// Len returns the number of patterns stored.
func (t *UnboundedStr) Len() int { return len(t.m) }

// Reset clears the table.
func (t *UnboundedStr) Reset() {
	clear(t.m)
	t.stats.resets++
}

// Counts returns the raw behaviour counters (see Bounded.Counts).
func (t *UnboundedStr) Counts() (inserts, evictions, resets uint64) { return t.stats.counts() }

// Stats reports the exact table's behaviour counters (it is not a Bounded,
// but predictors aggregate its stats the same way).
func (t *UnboundedStr) Stats() Stats {
	return Stats{
		Kind: "exact", Capacity: -1, Occupancy: 1,
		Inserts: t.stats.inserts, Resets: t.stats.resets,
	}
}

func utilization(slots []Entry, gen uint32) float64 {
	if len(slots) == 0 {
		return math.NaN()
	}
	n := 0
	for i := range slots {
		if slots[i].valid && slots[i].gen == gen {
			n++
		}
	}
	return float64(n) / float64(len(slots))
}

// New returns a Bounded table of the named organization: "tagless",
// "assoc1", "assoc2", "assoc4" (or any assoc<2^k>), "fullassoc", or
// "unbounded". It is the string form accepted by the CLI tools.
func New(kind string, entries int) (Bounded, error) {
	switch kind {
	case "tagless":
		return NewTagless(entries), nil
	case "fullassoc":
		return NewFullAssoc(entries), nil
	case "unbounded":
		return NewUnbounded64(), nil
	}
	var ways int
	if _, err := fmt.Sscanf(kind, "assoc%d", &ways); err == nil && ways > 0 {
		if ways&(ways-1) != 0 || ways > entries {
			return nil, fmt.Errorf("table: invalid associativity %d for %d entries", ways, entries)
		}
		return NewSetAssoc(entries, ways), nil
	}
	return nil, fmt.Errorf("table: unknown kind %q", kind)
}
