package table

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTaglessNoTags(t *testing.T) {
	tb := NewTagless(8)
	if tb.Probe(3) != nil {
		t.Fatal("empty table probed non-nil")
	}
	e := tb.Insert(3)
	e.Target = 0x100
	// A different key mapping to the same slot returns the foreign entry:
	// tagless tables have no tags.
	got := tb.Probe(3 + 8)
	if got == nil || got.Target != 0x100 {
		t.Errorf("tagless aliasing probe: %+v", got)
	}
	// A key mapping to a different, empty slot still misses.
	if tb.Probe(4) != nil {
		t.Error("probe of untouched slot hit")
	}
}

func TestSetAssocTagging(t *testing.T) {
	tb := NewSetAssoc(8, 1)
	e := tb.Insert(3)
	e.Target = 0x100
	if tb.Probe(3+8) != nil {
		t.Error("1-way tagged table returned aliased entry")
	}
	if got := tb.Probe(3); got == nil || got.Target != 0x100 {
		t.Errorf("tag hit failed: %+v", got)
	}
}

func TestSetAssocLRU(t *testing.T) {
	tb := NewSetAssoc(8, 4) // 2 sets of 4
	// Fill set 0 (even keys land in set key&1... mask=1).
	keys := []uint64{0, 2, 4, 6} // all set 0
	for _, k := range keys {
		tb.Insert(k).Target = uint32(k * 100)
	}
	// Touch key 0 to make it MRU; victim should then be key 2.
	if tb.Probe(0) == nil {
		t.Fatal("probe 0 missed")
	}
	tb.Insert(8) // evicts LRU of set 0
	if tb.Probe(2) != nil {
		t.Error("LRU entry 2 survived eviction")
	}
	for _, k := range []uint64{0, 4, 6, 8} {
		if tb.Probe(k) == nil {
			t.Errorf("entry %d wrongly evicted", k)
		}
	}
}

func TestSetAssocSetsAreIndependent(t *testing.T) {
	tb := NewSetAssoc(8, 2) // 4 sets
	tb.Insert(1).Target = 10
	tb.Insert(2).Target = 20
	tb.Insert(3).Target = 30
	for k, want := range map[uint64]uint32{1: 10, 2: 20, 3: 30} {
		if got := tb.Probe(k); got == nil || got.Target != want {
			t.Errorf("key %d: %+v, want target %d", k, got, want)
		}
	}
}

func TestFullAssocLRU(t *testing.T) {
	tb := NewFullAssoc(3)
	for k := uint64(1); k <= 3; k++ {
		tb.Insert(k).Target = uint32(k)
	}
	tb.Probe(1) // 1 becomes MRU; LRU order now 2,3,1
	tb.Insert(4)
	if tb.Probe(2) != nil {
		t.Error("LRU victim 2 survived")
	}
	for _, k := range []uint64{1, 3, 4} {
		if tb.Probe(k) == nil {
			t.Errorf("key %d evicted unexpectedly", k)
		}
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestFullAssocInsertExisting(t *testing.T) {
	tb := NewFullAssoc(4)
	tb.Insert(7).Target = 1
	tb.Insert(7).Target = 2
	if tb.Len() != 1 {
		t.Fatalf("duplicate insert grew table to %d", tb.Len())
	}
	if got := tb.Probe(7); got.Target != 2 {
		t.Errorf("Target = %d", got.Target)
	}
}

func TestFullAssocSingleEntry(t *testing.T) {
	tb := NewFullAssoc(1)
	tb.Insert(1).Target = 10
	tb.Insert(2).Target = 20
	if tb.Probe(1) != nil {
		t.Error("capacity-1 table kept evicted key")
	}
	if got := tb.Probe(2); got == nil || got.Target != 20 {
		t.Errorf("capacity-1 table lost current key: %+v", got)
	}
}

// TestFullAssocMatchesReference drives the LRU table against a brute-force
// reference model with random probe/insert traffic.
func TestFullAssocMatchesReference(t *testing.T) {
	const capacity = 16
	tb := NewFullAssoc(capacity)
	type refEntry struct {
		key    uint64
		target uint32
	}
	var ref []refEntry // index 0 = MRU
	refFind := func(key uint64) int {
		for i, e := range ref {
			if e.key == key {
				return i
			}
		}
		return -1
	}
	rng := rand.New(rand.NewPCG(21, 22))
	for step := 0; step < 20000; step++ {
		key := uint64(rng.IntN(40)) // small key space to force eviction
		if i := refFind(key); i >= 0 {
			e := ref[i]
			copy(ref[1:i+1], ref[:i])
			ref[0] = e
			got := tb.Probe(key)
			if got == nil || got.Target != e.target {
				t.Fatalf("step %d: probe %d = %+v, want target %d", step, key, got, e.target)
			}
		} else {
			if tb.Probe(key) != nil {
				t.Fatalf("step %d: probe %d hit, reference says miss", step, key)
			}
			tgt := rng.Uint32()
			tb.Insert(key).Target = tgt
			if len(ref) == capacity {
				ref = ref[:capacity-1]
			}
			ref = append([]refEntry{{key, tgt}}, ref...)
		}
	}
}

// TestSetAssocMatchesReference does the same for a 4-way set-associative
// table.
func TestSetAssocMatchesReference(t *testing.T) {
	const entries, ways = 32, 4
	sets := entries / ways
	tb := NewSetAssoc(entries, ways)
	type refEntry struct {
		key    uint64
		target uint32
	}
	ref := make([][]refEntry, sets) // per set, index 0 = MRU
	rng := rand.New(rand.NewPCG(23, 24))
	for step := 0; step < 20000; step++ {
		key := uint64(rng.IntN(200))
		set := int(key) % sets
		idx := -1
		for i, e := range ref[set] {
			if e.key == key {
				idx = i
				break
			}
		}
		if idx >= 0 {
			e := ref[set][idx]
			copy(ref[set][1:idx+1], ref[set][:idx])
			ref[set][0] = e
			got := tb.Probe(key)
			if got == nil || got.Target != e.target {
				t.Fatalf("step %d: probe %d = %+v, want %d", step, key, got, e.target)
			}
		} else {
			if tb.Probe(key) != nil {
				t.Fatalf("step %d: probe %d hit, want miss", step, key)
			}
			tgt := rng.Uint32()
			tb.Insert(key).Target = tgt
			if len(ref[set]) == ways {
				ref[set] = ref[set][:ways-1]
			}
			ref[set] = append([]refEntry{{key, tgt}}, ref[set]...)
		}
	}
}

func TestUnbounded64NeverEvicts(t *testing.T) {
	tb := NewUnbounded64()
	for k := uint64(0); k < 10000; k++ {
		tb.Insert(k).Target = uint32(k)
	}
	for k := uint64(0); k < 10000; k++ {
		if got := tb.Probe(k); got == nil || got.Target != uint32(k) {
			t.Fatalf("key %d lost: %+v", k, got)
		}
	}
	if tb.Len() != 10000 {
		t.Errorf("Len = %d", tb.Len())
	}
	if tb.Capacity() != -1 {
		t.Errorf("Capacity = %d, want -1", tb.Capacity())
	}
}

func TestUnboundedStr(t *testing.T) {
	tb := NewUnboundedStr()
	k1, k2 := []byte("abc"), []byte("abd")
	if tb.Probe(k1) != nil {
		t.Fatal("empty probe hit")
	}
	tb.Insert(k1).Target = 7
	if tb.Probe(k2) != nil {
		t.Error("distinct key hit")
	}
	if got := tb.Probe(k1); got == nil || got.Target != 7 {
		t.Errorf("probe: %+v", got)
	}
	// Mutating the key slice after insert must not corrupt the table.
	k1[0] = 'z'
	if got := tb.Probe([]byte("abc")); got == nil || got.Target != 7 {
		t.Error("table aliased caller's key buffer")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEntryResetOnReplace(t *testing.T) {
	tb := NewTagless(2)
	e := tb.Insert(0)
	e.Target, e.Hyst, e.Conf, e.Chosen = 9, 1, 3, 2
	e2 := tb.Insert(2) // same slot
	if e2.Target != 0 || e2.Hyst != 0 || e2.Conf != 0 || e2.Chosen != 0 {
		t.Errorf("Insert did not reset entry: %+v", e2)
	}
	if !e2.Valid() {
		t.Error("inserted entry not valid")
	}
	if e2.Key() != 2 {
		t.Errorf("Key = %d", e2.Key())
	}
}

func TestUtilizationAndReset(t *testing.T) {
	for _, tb := range []Bounded{NewTagless(8), NewSetAssoc(8, 2), NewFullAssoc(8)} {
		if u := tb.Utilization(); u != 0 {
			t.Errorf("%s: empty utilization %v", tb.Kind(), u)
		}
		for k := uint64(0); k < 4; k++ {
			tb.Insert(k)
		}
		if u := tb.Utilization(); u <= 0 || u > 1 {
			t.Errorf("%s: utilization %v out of range", tb.Kind(), u)
		}
		tb.Reset()
		if u := tb.Utilization(); u != 0 {
			t.Errorf("%s: utilization %v after Reset", tb.Kind(), u)
		}
		if tb.Probe(0) != nil {
			t.Errorf("%s: probe hit after Reset", tb.Kind())
		}
	}
}

func TestKindsAndCapacity(t *testing.T) {
	cases := []struct {
		tb   Bounded
		kind string
		cap  int
	}{
		{NewTagless(16), "tagless", 16},
		{NewSetAssoc(16, 1), "assoc1", 16},
		{NewSetAssoc(16, 2), "assoc2", 16},
		{NewSetAssoc(16, 4), "assoc4", 16},
		{NewFullAssoc(16), "fullassoc", 16},
		{NewUnbounded64(), "unbounded", -1},
	}
	for _, c := range cases {
		if c.tb.Kind() != c.kind {
			t.Errorf("Kind = %q, want %q", c.tb.Kind(), c.kind)
		}
		if c.tb.Capacity() != c.cap {
			t.Errorf("%s: Capacity = %d, want %d", c.kind, c.tb.Capacity(), c.cap)
		}
	}
}

func TestNewByName(t *testing.T) {
	for _, kind := range []string{"tagless", "assoc1", "assoc2", "assoc4", "fullassoc", "unbounded"} {
		tb, err := New(kind, 64)
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if tb.Kind() != kind {
			t.Errorf("New(%q).Kind() = %q", kind, tb.Kind())
		}
	}
	for _, kind := range []string{"", "assoc3", "assoc0", "weird", "assoc128"} {
		if _, err := New(kind, 64); err == nil {
			t.Errorf("New(%q) accepted", kind)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewTagless(0) },
		func() { NewTagless(3) },
		func() { NewSetAssoc(8, 3) },
		func() { NewSetAssoc(6, 2) },
		func() { NewSetAssoc(2, 4) },
		func() { NewFullAssoc(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

// TestBoundedProbeAfterInsert is the cross-organization contract: Probe(k)
// immediately after Insert(k) returns the inserted entry.
func TestBoundedProbeAfterInsert(t *testing.T) {
	mk := []func() Bounded{
		func() Bounded { return NewTagless(64) },
		func() Bounded { return NewSetAssoc(64, 1) },
		func() Bounded { return NewSetAssoc(64, 2) },
		func() Bounded { return NewSetAssoc(64, 4) },
		func() Bounded { return NewFullAssoc(64) },
		func() Bounded { return NewUnbounded64() },
	}
	for _, make := range mk {
		tb := make()
		f := func(key uint64, target uint32) bool {
			tb.Insert(key).Target = target
			got := tb.Probe(key)
			return got != nil && got.Target == target
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", tb.Kind(), err)
		}
	}
}
