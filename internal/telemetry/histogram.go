// Log-bucketed latency histograms: the percentile-bearing upgrade of Timer.
//
// A Histogram keeps the Timer's count/total-ns pair (so every snapshot key a
// Timer ever exported stays stable) and adds a fixed array of atomic bucket
// counters over a log2 scale with 4 sub-buckets per octave — ~12% worst-case
// relative error on any quantile, 1.3KB per histogram, no locks, and an
// Observe that is two atomic adds and an atomic increment with zero
// allocations enabled or disabled. That is cheap enough to sit on every
// per-frame hot-path duration in serve and cluster.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSub sub-buckets per power of two; each bucket spans a 1/histSub
	// fraction of its octave, bounding quantile error to ~1/(2·histSub).
	histSub     = 4
	histSubBits = 2 // log2(histSub)
	// numHistBuckets covers durations up to 2^40 ns (~18 minutes); anything
	// slower lands in the last (overflow) bucket. 160 buckets total.
	numHistBuckets = (40-histSubBits)*histSub + histSub
)

// histIndex maps a nanosecond value to its bucket. Values below histSub map
// to their own exact buckets; beyond that the index is (octave, sub-bucket)
// flattened, monotone in ns.
func histIndex(ns uint64) int {
	if ns < histSub {
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 - histSubBits
	idx := exp*histSub + int(ns>>uint(exp)) // ns>>exp ∈ [histSub, 2·histSub)
	if idx >= numHistBuckets {
		return numHistBuckets - 1
	}
	return idx
}

// histUpper returns the exclusive upper edge (in ns) of bucket idx; the last
// bucket is unbounded and reports the largest representable edge.
func histUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx) + 1
	}
	exp := idx / histSub
	sub := idx % histSub
	return uint64(histSub+sub+1) << uint(exp-1)
	// idx = exp*histSub + (histSub+sub) was produced by histIndex with that
	// exp, so the bucket holds ns with ns>>exp == histSub+sub.
}

// histLower returns the inclusive lower edge (in ns) of bucket idx.
func histLower(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	exp := idx / histSub
	sub := idx % histSub
	return uint64(histSub+sub) << uint(exp-1)
}

// Histogram accumulates duration observations into log-spaced buckets and
// answers quantile queries. The nil Histogram is a valid no-op, same contract
// as every other handle in this package. It is a drop-in replacement for
// Timer: Observe/Count/Total/Mean have identical signatures, and Snapshot
// emits the same <name>_count / <name>_ns keys (plus quantiles).
type Histogram struct {
	n       atomic.Uint64
	ns      atomic.Uint64
	buckets [numHistBuckets]atomic.Uint64
}

// Observe records one duration. Zero allocations, three uncontended atomic
// ops; negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.n.Add(1)
	h.ns.Add(ns)
	h.buckets[histIndex(ns)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Total returns the accumulated duration.
func (h *Histogram) Total() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.ns.Load())
}

// Mean returns the average observation, 0 before the first one.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Total() / time.Duration(n)
}

// Quantile returns the q-quantile (q in [0,1]) of everything observed so
// far, linearly interpolated inside the winning bucket. Concurrent Observes
// make the read approximate in the same way Snapshot is: each bucket is read
// atomically, the set of buckets is not one global cut. Returns 0 before the
// first observation.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [numHistBuckets]uint64
	total := uint64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Nearest-rank target, then interpolate within the bucket that holds it.
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < cum+c {
			lo, hi := histLower(i), histUpper(i)
			frac := (float64(rank-cum) + 0.5) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return 0 // unreachable: total > 0 guarantees a winning bucket
}

// bucketCumulative appends the non-empty buckets as (upper-edge-ns,
// cumulative-count) pairs — the Prometheus _bucket{le=...} series. The
// returned cumulative of the last pair equals Count at read time.
type histBucket struct {
	upperNS uint64
	cum     uint64
}

func (h *Histogram) cumulative(dst []histBucket) []histBucket {
	if h == nil {
		return dst[:0]
	}
	dst = dst[:0]
	cum := uint64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		dst = append(dst, histBucket{upperNS: histUpper(i), cum: cum})
	}
	return dst
}

// histQuantiles are the quantiles every histogram exports in snapshots and
// on /metrics, chosen to match ibpload's client-side report.
var histQuantiles = [...]struct {
	q      float64
	suffix string
}{
	{0.50, "_p50_ns"},
	{0.95, "_p95_ns"},
	{0.99, "_p99_ns"},
	{0.999, "_p999_ns"},
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (the no-op handle) on the nil Registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}
