package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistIndexMonotone pins the bucket mapping: indices are monotone in ns
// and every bucket's [lower, upper) edges round-trip its members.
func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1 << 10, 1 << 20, 1 << 30, 1 << 40, 1 << 50, 1<<63 - 1} {
		idx := histIndex(ns)
		if idx < prev {
			t.Fatalf("histIndex not monotone at ns=%d: %d < %d", ns, idx, prev)
		}
		prev = idx
		if idx < numHistBuckets-1 { // last bucket is the unbounded overflow
			if lo, hi := histLower(idx), histUpper(idx); ns < lo || ns >= hi {
				t.Fatalf("ns=%d in bucket %d but edges [%d,%d)", ns, idx, lo, hi)
			}
		}
	}
}

// TestHistogramQuantiles checks quantiles against a known distribution: with
// log buckets at 4 sub-buckets per octave the relative error on any quantile
// is bounded by the bucket width (~12%); allow 15% for interpolation slack.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	rng := rand.New(rand.NewSource(42))
	const n = 100000
	samples := make([]time.Duration, n)
	for i := range samples {
		// Log-uniform between 1µs and 10ms, the shape of real frame latency.
		d := time.Duration(float64(time.Microsecond) * math.Pow(1e4, rng.Float64()))
		samples[i] = d
		h.Observe(d)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		want := samples[int(q*float64(n))]
		if rel := math.Abs(float64(got)-float64(want)) / float64(want); rel > 0.15 {
			t.Errorf("Quantile(%v) = %v, exact %v (rel err %.1f%%)", q, got, want, rel*100)
		}
	}
	if h.Quantile(0) <= 0 || h.Quantile(1) < h.Quantile(0.5) {
		t.Errorf("extreme quantiles out of order: q0=%v q50=%v q1=%v",
			h.Quantile(0), h.Quantile(0.5), h.Quantile(1))
	}
}

// TestHistogramObserveZeroAllocs is the histogram half of the disabled-path
// contract (ISSUE 8 satellite): Observe allocates nothing on the nil handle
// (telemetry disabled) and nothing on a live one (enabled hot path).
func TestHistogramObserveZeroAllocs(t *testing.T) {
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nilH.Observe(time.Microsecond)
	}); n != 0 {
		t.Errorf("nil Histogram Observe allocates %v/op", n)
	}
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(time.Microsecond)
	}); n != 0 {
		t.Errorf("enabled Histogram Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
	}); n != 0 {
		t.Errorf("Quantile allocates %v/op", n)
	}
}

// TestHistogramEnableDisableRace hammers a histogram through the process
// default registry while Enable/Disable toggles underneath — the pattern
// ibpserved uses (resolve handle per session, observe per frame). Run with
// -race in CI's tracing job.
func TestHistogramEnableDisableRace(t *testing.T) {
	defer Disable()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := Default().Histogram("race_frame")
				for j := 0; j < 100; j++ {
					h.Observe(time.Duration(j) * time.Microsecond)
				}
				_ = h.Quantile(0.99)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			Enable(nil)
			Default().Snapshot()
			Disable()
		}
		close(stop)
	}()
	wg.Wait()
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xffff) * time.Nanosecond)
	}
}
