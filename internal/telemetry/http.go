// HTTP exposure: a Prometheus-text + JSON metrics endpoint and a pprof
// server, both started on demand by the command-line front ends.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format: one `# HELP` + `# TYPE` header per metric family, sorted by family
// name. Counters are counters, gauges are gauges, timers are summaries
// (`<name>_count` observations + `<name>_sum` seconds — not the two
// gauge-style counter lines of earlier revisions), and histograms are real
// histograms (`<name>_bucket{le="..."}` cumulative series in seconds, only
// the non-empty buckets, plus `_sum`/`_count`) followed by convenience
// quantile gauges (`<name>_p99_ns` etc., same values as the JSON snapshot)
// so p99 is scrapeable without a PromQL histogram_quantile.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Walk typed families straight off the registry maps instead of the
	// flattened Snapshot: the exposition needs each family's kind and, for
	// histograms, its buckets.
	type family struct {
		name string
		emit func(io.Writer, string) error
	}
	r.mu.Lock()
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.timers)+len(r.histograms))
	for name, c := range r.counters {
		c := c
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# HELP %s Cumulative counter %s.\n# TYPE %s counter\n%s %v\n",
				n, n, n, n, float64(c.Load()))
			return err
		}})
	}
	for name, g := range r.gauges {
		g := g
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %v\n",
				n, n, n, n, g.Load())
			return err
		}})
	}
	for name, t := range r.timers {
		t := t
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# HELP %s Duration summary %s (seconds).\n# TYPE %s summary\n%s_sum %v\n%s_count %v\n",
				n, n, n, n, t.Total().Seconds(), n, float64(t.Count()))
			return err
		}})
	}
	for name, h := range r.histograms {
		h := h
		fams = append(fams, family{name, func(w io.Writer, n string) error {
			if _, err := fmt.Fprintf(w, "# HELP %s Latency histogram %s (seconds).\n# TYPE %s histogram\n", n, n, n); err != nil {
				return err
			}
			for _, b := range h.cumulative(nil) {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", n, float64(b.upperNS)/1e9, b.cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %v\n%s_sum %v\n%s_count %v\n",
				n, float64(h.Count()), n, h.Total().Seconds(), n, float64(h.Count())); err != nil {
				return err
			}
			for _, hq := range histQuantiles {
				qn := n + hq.suffix
				if _, err := fmt.Fprintf(w, "# HELP %s %v-quantile of %s in nanoseconds.\n# TYPE %s gauge\n%s %v\n",
					qn, hq.q, n, qn, qn, float64(h.Quantile(hq.q).Nanoseconds())); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.emit(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// setJSONHeaders stamps the headers every live-JSON endpoint carries:
// explicit media type with charset, content sniffing disabled, caching off.
// Regression-tested across all endpoints by TestEndpointContentTypes.
func setJSONHeaders(h http.Header) {
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Cache-Control", "no-store")
}

// Handler returns an http.Handler serving the registry: Prometheus text by
// default, the JSON snapshot when the request asks for ?format=json (the
// expvar-style machine-readable form).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			setJSONHeaders(w.Header())
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.Snapshot())
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/plain; version=0.0.4")
		h.Set("X-Content-Type-Options", "nosniff")
		h.Set("Cache-Control", "no-store")
		r.WritePrometheus(w)
	})
}

// serve binds addr and serves mux in a background goroutine, returning the
// server (caller closes it) and the bound address (useful with ":0").
func serve(addr string, mux *http.ServeMux) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// ServeMetrics starts an HTTP server on addr exposing the registry at
// /metrics (Prometheus text, JSON with ?format=json) and a JSON snapshot at
// /vars. Extra mount functions, when given, add caller endpoints to the same
// mux (ibpserved and ibprouter hang /debug/flightrecorder here). It returns
// the running server and its bound address; the caller owns shutdown via
// srv.Close.
func ServeMetrics(addr string, r *Registry, mounts ...func(*http.ServeMux)) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	for _, m := range mounts {
		m(mux)
	}
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		setJSONHeaders(w.Header())
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	return serve(addr, mux)
}

// ServePprof starts a net/http/pprof server on addr (profiles under
// /debug/pprof/). It returns the running server and its bound address; the
// caller owns shutdown via srv.Close.
func ServePprof(addr string) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serve(addr, mux)
}
