// HTTP exposure: a Prometheus-text + JSON metrics endpoint and a pprof
// server, both started on demand by the command-line front ends.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one `# TYPE` line plus a sample per metric, sorted by name).
// Counters and timers are exposed as counters, gauges as gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Classify names so the TYPE lines are right even though Snapshot
	// flattens the kinds away.
	r.mu.Lock()
	kind := make(map[string]string, len(r.counters)+len(r.gauges)+2*len(r.timers))
	for name := range r.counters {
		kind[name] = "counter"
	}
	for name := range r.gauges {
		kind[name] = "gauge"
	}
	for name := range r.timers {
		kind[name+"_count"] = "counter"
		kind[name+"_ns"] = "counter"
	}
	r.mu.Unlock()
	s := r.Snapshot()
	for _, name := range s.Names() {
		k := kind[name]
		if k == "" {
			k = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", name, k, name, s[name]); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry: Prometheus text by
// default, the JSON snapshot when the request asks for ?format=json (the
// expvar-style machine-readable form).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// serve binds addr and serves mux in a background goroutine, returning the
// server (caller closes it) and the bound address (useful with ":0").
func serve(addr string, mux *http.ServeMux) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// ServeMetrics starts an HTTP server on addr exposing the registry at
// /metrics (Prometheus text, JSON with ?format=json) and a JSON snapshot at
// /vars. It returns the running server and its bound address; the caller
// owns shutdown via srv.Close.
func ServeMetrics(addr string, r *Registry) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	return serve(addr, mux)
}

// ServePprof starts a net/http/pprof server on addr (profiles under
// /debug/pprof/). It returns the running server and its bound address; the
// caller owns shutdown via srv.Close.
func ServePprof(addr string) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serve(addr, mux)
}
