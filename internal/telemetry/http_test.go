package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHTTPEndpointsUnderEnableDisableToggle hammers /metrics and /vars
// while other goroutines flip the process-wide registry on and off and
// write metrics through whatever Default returns at that instant. Run with
// -race (CI does): the point is that serving, toggling, and instrumenting
// are safe to interleave, and that readers always get a parseable response
// whichever side of a toggle they land on.
func TestHTTPEndpointsUnderEnableDisableToggle(t *testing.T) {
	r := New()
	srv, addr, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer Disable() // leave the process-wide state clean for other tests

	const (
		togglers = 2
		writers  = 4
		readers  = 4
		rounds   = 200
	)
	var wg sync.WaitGroup
	for i := 0; i < togglers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				if (n+i)%2 == 0 {
					Enable(r)
				} else {
					Disable()
				}
			}
		}(i)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				// Default may be r or nil mid-toggle; both must be safe.
				d := Default()
				d.Counter(fmt.Sprintf("toggle_writes_%d_total", i)).Inc()
				d.Gauge("toggle_gauge").Set(float64(n))
			}
		}(i)
	}
	errs := make(chan string, readers*2*rounds)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < rounds/10; n++ {
				for _, path := range []string{"/metrics", "/metrics?format=json", "/vars"} {
					code, body := get(t, "http://"+addr+path)
					if code != http.StatusOK {
						errs <- fmt.Sprintf("%s returned %d", path, code)
						continue
					}
					if strings.Contains(path, "json") || path == "/vars" {
						var snap map[string]float64
						if err := json.Unmarshal(body, &snap); err != nil {
							errs <- fmt.Sprintf("%s unparseable: %v", path, err)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// After the dust settles, writes that landed while enabled are visible.
	Enable(r)
	Default().Counter("toggle_final_total").Inc()
	code, body := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "toggle_final_total 1") {
		t.Errorf("final counter missing from /metrics (code %d):\n%s", code, body)
	}
}

// TestVarsMatchesSnapshot pins /vars to the JSON snapshot of the served
// registry, including the timer's _count/_ns flattening.
func TestVarsMatchesSnapshot(t *testing.T) {
	r := New()
	r.Counter("reqs_total").Add(3)
	r.Timer("step").Observe(1500 * time.Nanosecond)
	srv, addr, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body := get(t, "http://"+addr+"/vars")
	var snap map[string]float64
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap["reqs_total"] != 3 || snap["step_count"] != 1 || snap["step_ns"] != 1500 {
		t.Errorf("snapshot mismatch: %v", snap)
	}
}
