// Structured logging for the command-line front ends: one slog.Logger
// construction point so every tool logs the same shape and honors the same
// -log flag vocabulary.
package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log flag vocabulary ("debug", "info", "warn",
// "error", or "off") to a slog level. "off" returns a level above Error so
// nothing is emitted.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	case "off", "none":
		return slog.LevelError + 4, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error|off)", s)
	}
}

// NewLogger returns the tools' standard structured logger: logfmt-style
// key=value text on w at the given level. Timestamps are kept — sweeps are
// long-running and the log interleaves with progress output, so "when" is
// part of the signal.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
