// Package telemetry is the instrumentation layer of the simulator: a
// registry of named atomic counters, gauges, and timers cheap enough to stay
// enabled inside the zero-alloc simulation hot loop, plus structured-logging
// and HTTP-exposure helpers for the command-line front ends.
//
// The central design point is the nop default: a nil *Registry is the
// disabled registry, and every metric handle it returns is a nil pointer
// whose methods are nil-safe no-ops. Instrumented code resolves its handles
// once per run (`r := telemetry.Default(); c := r.Counter("...")`) and then
// updates them unconditionally — when telemetry is disabled each update
// compiles to a nil check and nothing else, and never allocates either way.
//
// Counter updates are single atomic adds, so instrumented hot paths batch
// them: the simulator accumulates per-block deltas in locals and publishes
// once per 8192-record block, keeping cross-lane cache-line traffic off the
// per-branch path.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil Counter is a valid
// no-op; all methods are nil-safe.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for the nil Counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value that can move both ways (occupancy,
// in-flight cells). The nil Gauge is a valid no-op.
type Gauge struct{ bits atomic.Uint64 } // float64 bits

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop (gauges are updated from many goroutines).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value (0 for the nil Gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates observations of a repeated duration: a count and a total
// in nanoseconds. The nil Timer is a valid no-op.
type Timer struct {
	n  atomic.Uint64
	ns atomic.Uint64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.n.Add(1)
	t.ns.Add(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Mean returns the average observation, 0 before the first one.
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// Registry is a namespace of metrics. Handles are created on first use and
// live for the registry's lifetime, so callers cache them in locals or
// structs and update lock-free from any number of goroutines.
//
// The nil *Registry is the disabled registry: every lookup returns a nil
// handle and Snapshot returns nil.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (the no-op handle) on the nil Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// the nil Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use. Returns nil on
// the nil Registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Snapshot is a point-in-time reading of every metric in a registry, keyed
// by metric name. Timers appear as two entries: <name>_count and <name>_ns.
// Histograms keep those two keys (so converting a timer to a histogram
// changes no existing dashboard or manifest key) and add quantile entries
// <name>_p50_ns, _p95_ns, _p99_ns, _p999_ns. It marshals directly into run
// manifests and metric dumps.
type Snapshot map[string]float64

// Snapshot reads every metric. Metrics updated concurrently are read
// atomically one by one (the snapshot is not a global atomic cut, but every
// individual value is a real value the metric held). Returns nil on the nil
// Registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+2*len(r.timers)+6*len(r.histograms))
	for name, c := range r.counters {
		s[name] = float64(c.Load())
	}
	for name, g := range r.gauges {
		s[name] = g.Load()
	}
	for name, t := range r.timers {
		s[name+"_count"] = float64(t.Count())
		s[name+"_ns"] = float64(t.Total().Nanoseconds())
	}
	for name, h := range r.histograms {
		s[name+"_count"] = float64(h.Count())
		s[name+"_ns"] = float64(h.Total().Nanoseconds())
		for _, hq := range histQuantiles {
			s[name+hq.suffix] = float64(h.Quantile(hq.q).Nanoseconds())
		}
	}
	return s
}

// Delta returns s minus prev, entry-wise over s's keys: the metric movement
// between two snapshots. Keys missing from prev are taken as starting at
// zero. Zero-valued deltas are dropped, so a per-experiment delta records
// only the subsystems the experiment actually exercised. Histogram quantile
// keys (_p50_ns and friends) are dropped too: a quantile is a distribution
// read, not a cumulative value, so its difference means nothing.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	if s == nil {
		return nil
	}
	out := make(Snapshot, len(s))
	for k, v := range s {
		if isQuantileKey(k) {
			continue
		}
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// isQuantileKey reports whether k is one of the histogram quantile snapshot
// keys excluded from Delta.
func isQuantileKey(k string) bool {
	for _, hq := range histQuantiles {
		if len(k) > len(hq.suffix) && k[len(k)-len(hq.suffix):] == hq.suffix {
			return true
		}
	}
	return false
}

// Names returns the snapshot's metric names sorted, the stable iteration
// order used by every textual rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the snapshot as sorted "name value" lines.
func (s Snapshot) String() string {
	var b []byte
	for _, name := range s.Names() {
		b = fmt.Appendf(b, "%s %v\n", name, s[name])
	}
	return string(b)
}

// def is the process-wide default registry; nil means disabled. Instrumented
// packages resolve it per run via Default, so flipping it takes effect on the
// next run, not mid-pass.
var def atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil while telemetry is
// disabled (the initial state). The nil return is directly usable: all
// Registry methods are nil-safe no-ops.
func Default() *Registry { return def.Load() }

// Enable installs r (or a fresh registry when r is nil) as the process-wide
// default and returns it. The front ends call it once at startup.
func Enable(r *Registry) *Registry {
	if r == nil {
		r = New()
	}
	def.Store(r)
	return r
}

// Disable removes the process-wide registry; subsequent Default calls
// return nil and instrumentation reverts to the nop path.
func Disable() { def.Store(nil) }
