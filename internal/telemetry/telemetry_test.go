package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"
)

// TestCounterAtomicity hammers one counter from many goroutines; under
// -race this also proves the update path is data-race free.
func TestCounterAtomicity(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range perWorker {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("inflight")
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %v after balanced adds, want 0", got)
	}
	g.Set(42.5)
	if got := g.Load(); got != 42.5 {
		t.Errorf("gauge = %v, want 42.5", got)
	}
}

func TestTimer(t *testing.T) {
	r := New()
	tm := r.Timer("block")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 40*time.Millisecond || tm.Mean() != 20*time.Millisecond {
		t.Errorf("timer: count=%d total=%v mean=%v", tm.Count(), tm.Total(), tm.Mean())
	}
}

// TestNopRegistryZeroAllocs is the disabled-instrumentation guarantee: every
// metric update through nil handles must be allocation-free (and, trivially,
// crash-free).
func TestNopRegistryZeroAllocs(t *testing.T) {
	var r *Registry // the disabled registry
	c := r.Counter("x")
	g := r.Gauge("y")
	tm := r.Timer("z")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		tm.Observe(time.Millisecond)
		_ = c.Load()
		_ = g.Load()
	})
	if allocs != 0 {
		t.Errorf("nop instrumentation allocates: %v allocs/op", allocs)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
}

// TestEnabledUpdateZeroAllocs pins the other half of the overhead story:
// live counter/gauge/timer updates don't allocate either.
func TestEnabledUpdateZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("x")
	g := r.Gauge("y")
	tm := r.Timer("z")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(7)
		g.Add(0.5)
		tm.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("live instrumentation allocates: %v allocs/op", allocs)
	}
}

// TestSnapshotWhileUpdating reads snapshots concurrently with writers; every
// observed value must be one the counter really held (monotonically growing),
// and under -race this proves snapshotting doesn't race with updates.
func TestSnapshotWhileUpdating(t *testing.T) {
	r := New()
	c := r.Counter("grows")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
			}
		}
	}()
	var last float64
	for range 100 {
		s := r.Snapshot()
		v := s["grows"]
		if v < last {
			t.Fatalf("snapshot went backwards: %v after %v", v, last)
		}
		last = v
	}
	close(stop)
	wg.Wait()
	if finals := r.Snapshot(); finals["grows"] != float64(c.Load()) {
		t.Errorf("final snapshot %v != counter %d", finals["grows"], c.Load())
	}
}

func TestHandlesAreStable(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name returned distinct counters")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same name returned distinct gauges")
	}
	if r.Timer("a") != r.Timer("a") {
		t.Error("same name returned distinct timers")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("moved")
	r.Counter("idle")
	before := r.Snapshot()
	c.Add(5)
	d := r.Snapshot().Delta(before)
	if len(d) != 1 || d["moved"] != 5 {
		t.Errorf("delta = %v, want {moved: 5}", d)
	}
	// A key absent from prev counts from zero.
	d2 := Snapshot{"new": 3}.Delta(Snapshot{})
	if d2["new"] != 3 {
		t.Errorf("delta vs empty = %v", d2)
	}
}

func TestSnapshotStringSorted(t *testing.T) {
	s := Snapshot{"b": 2, "a": 1}
	if got := s.String(); got != "a 1\nb 2\n" {
		t.Errorf("String() = %q", got)
	}
}

func TestDefaultEnableDisable(t *testing.T) {
	if Default() != nil {
		t.Fatal("telemetry enabled at test start")
	}
	r := Enable(nil)
	if r == nil || Default() != r {
		t.Fatal("Enable(nil) did not install a fresh registry")
	}
	Disable()
	if Default() != nil {
		t.Error("Disable left a registry installed")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("requests_total").Add(7)
	r.Gauge("inflight").Set(2)
	r.Timer("cell").Observe(5 * time.Millisecond)
	r.Histogram("frame").Observe(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		// Every family carries HELP + TYPE headers.
		"# HELP requests_total ",
		"# TYPE requests_total counter\nrequests_total 7\n",
		"# TYPE inflight gauge\ninflight 2\n",
		// Timers are summaries: _sum in seconds + _count, not gauge-style
		// counter lines.
		"# TYPE cell summary\ncell_sum 0.005\ncell_count 1\n",
		// Histograms expose cumulative buckets, totals, and quantile gauges.
		"# TYPE frame histogram\n",
		"frame_bucket{le=\"+Inf\"} 1\nframe_sum 0.002\nframe_count 1\n",
		"# TYPE frame_p99_ns gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cell_ns") {
		t.Errorf("timer still rendered as gauge-style cell_ns line:\n%s", out)
	}
	// The single 2ms observation's bucket must cover 0.002s.
	if !strings.Contains(out, "frame_bucket{le=\"0.002") {
		t.Errorf("missing 2ms histogram bucket:\n%s", out)
	}
}

// TestServeMetricsLive drives the HTTP endpoint while a goroutine keeps
// updating metrics — the scrape path must serve fresh values mid-run.
func TestServeMetricsLive(t *testing.T) {
	r := New()
	c := r.Counter("live_total")
	srv, addr, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
			}
		}
	}()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "live_total") {
		t.Errorf("/metrics missing live_total:\n%s", out)
	}
	if out := get("/metrics?format=json"); !strings.Contains(out, "\"live_total\"") {
		t.Errorf("/metrics?format=json missing live_total:\n%s", out)
	}
	if out := get("/vars"); !strings.Contains(out, "\"live_total\"") {
		t.Errorf("/vars missing live_total:\n%s", out)
	}
	close(stop)
	wg.Wait()
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	off, err := ParseLevel("off")
	if err != nil || off <= slog.LevelError {
		t.Errorf("ParseLevel(off) = %v, %v; want above error", off, err)
	}
	if _, err := ParseLevel("shouty"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, slog.LevelWarn)
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info leaked through warn level: %s", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("warn line malformed: %s", out)
	}
}
