package trace

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
)

// Vectored frame writes
//
// FrameBatcher assembles any number of frames and hands them to the kernel
// in one vectored write (net.Buffers → writev on TCP connections), instead
// of one buffered WriteFrame+Flush round per frame. Small payloads (acks,
// control frames) are copied into the batch arena so a typical ack burst is
// a single contiguous write; large payloads (records relays, event frames)
// are spliced in by reference and never copied. The batcher also closes the
// loop on buffer ownership: a frame added with its PooledBuf is released as
// soon as the batch no longer needs the bytes.
//
// A FrameBatcher is not safe for concurrent use; each connection writer owns
// one. The zero value is ready to use, and all internal storage is reused
// across batches, so a steady-state writer allocates nothing.

// inlineLimit is the payload size up to which Add copies into the arena.
// Beyond it, splicing by reference (one more iovec) is cheaper than the
// copy.
const inlineLimit = 512

// FrameBatcher accumulates frames for one vectored write.
type FrameBatcher struct {
	arena   []byte
	cuts    []cut
	owned   []*PooledBuf
	vecs    net.Buffers
	scratch net.Buffers // consumed by WriteTo; vecs keeps the backing array
	frames  int
}

// cut splices an external payload into the arena byte stream at offset off.
type cut struct {
	off int
	ext []byte
}

// Add appends one frame to the batch. owner, when non-nil, is the payload's
// pooled buffer: the batcher takes the caller's reference and releases it —
// immediately if the payload was copied into the arena, after WriteTo if it
// was spliced by reference.
func (fb *FrameBatcher) Add(typ uint64, payload []byte, owner *PooledBuf) {
	// The header is built straight in the arena (a stack array would escape
	// into the crc32 call and cost an allocation per frame).
	start := len(fb.arena)
	fb.arena = binary.AppendUvarint(fb.arena, typ)
	fb.arena = binary.AppendUvarint(fb.arena, uint64(len(payload)))
	sum := crc32.ChecksumIEEE(fb.arena[start:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if len(payload) <= inlineLimit {
		fb.arena = append(fb.arena, payload...)
		owner.Release()
	} else {
		fb.cuts = append(fb.cuts, cut{off: len(fb.arena), ext: payload})
		if owner != nil {
			fb.owned = append(fb.owned, owner)
		}
	}
	fb.arena = binary.LittleEndian.AppendUint32(fb.arena, sum)
	fb.frames++
}

// Frames returns the number of frames accumulated since the last Flush.
func (fb *FrameBatcher) Frames() int { return fb.frames }

// Flush writes the whole batch to w — a single Write when every payload
// was inlined, one vectored write (writev on a net.Conn) otherwise — then
// releases the spliced buffers and resets for the next batch. The batch is
// consumed even on error (the connection is dead; the bytes are gone either
// way).
func (fb *FrameBatcher) Flush(w io.Writer) error {
	var err error
	if len(fb.cuts) == 0 {
		if len(fb.arena) > 0 {
			_, err = w.Write(fb.arena)
		}
	} else {
		vecs := fb.vecs[:0]
		prev := 0
		for _, c := range fb.cuts {
			if c.off > prev {
				vecs = append(vecs, fb.arena[prev:c.off])
			}
			vecs = append(vecs, c.ext)
			prev = c.off
		}
		if prev < len(fb.arena) {
			vecs = append(vecs, fb.arena[prev:])
		}
		fb.vecs = vecs // keep the grown backing array
		// WriteTo consumes its receiver slice; hand it a scratch copy so
		// fb.vecs' backing array survives for the next batch (a field, not a
		// local, so nothing escapes per flush).
		fb.scratch = append(fb.scratch[:0], vecs...)
		full := fb.scratch // WriteTo advances the header; restore it after
		_, err = fb.scratch.WriteTo(w)
		fb.scratch = full[:0]
	}
	for i, b := range fb.owned {
		b.Release()
		fb.owned[i] = nil
	}
	fb.owned = fb.owned[:0]
	fb.cuts = fb.cuts[:0]
	fb.arena = fb.arena[:0]
	fb.frames = 0
	return err
}
