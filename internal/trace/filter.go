package trace

import "fmt"

// Filter returns the subsequence of records satisfying keep, preserving
// instruction accounting: the Gap of a dropped record is folded into the
// next kept record, so Instructions() is invariant over any filter that
// keeps at least the final record's successor set.
func (t Trace) Filter(keep func(Record) bool) Trace {
	out := make(Trace, 0, len(t))
	var carry uint32
	for _, r := range t {
		if !keep(r) {
			carry += r.Gap
			continue
		}
		r.Gap += carry
		carry = 0
		out = append(out, r)
	}
	return out
}

// OfKind returns the records of the given kinds, with gaps folded.
func (t Trace) OfKind(kinds ...Kind) Trace {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	return t.Filter(func(r Record) bool { return want[r.Kind] })
}

// Slice returns the subtrace covering the half-open indirect-branch index
// range [from, to): warm-up skipping and phase isolation for analyses. The
// records before the from-th indirect branch are dropped; non-indirect
// records travel with the indirect branch that follows them.
func (t Trace) Slice(from, to int) (Trace, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("trace: invalid slice [%d, %d)", from, to)
	}
	out := make(Trace, 0)
	seen := 0
	var pending Trace
	for _, r := range t {
		if !r.Kind.Indirect() {
			pending = append(pending, r)
			continue
		}
		if seen >= from && seen < to {
			out = append(out, pending...)
			out = append(out, r)
		}
		pending = pending[:0]
		seen++
		if seen >= to {
			break
		}
	}
	return out, nil
}

// Concat joins traces into one (useful for context-switch studies: the
// tables see one program's branches, then another's).
func Concat(traces ...Trace) Trace {
	n := 0
	for _, t := range traces {
		n += len(t)
	}
	out := make(Trace, 0, n)
	for _, t := range traces {
		out = append(out, t...)
	}
	return out
}

// Interleave merges traces round-robin in chunks of the given size,
// approximating fine-grained multiprogramming over a shared predictor.
func Interleave(chunk int, traces ...Trace) (Trace, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("trace: interleave chunk must be positive, got %d", chunk)
	}
	total := 0
	pos := make([]int, len(traces))
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	for len(out) < total {
		progressed := false
		for i, t := range traces {
			if pos[i] >= len(t) {
				continue
			}
			end := pos[i] + chunk
			if end > len(t) {
				end = len(t)
			}
			out = append(out, t[pos[i]:end]...)
			pos[i] = end
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out, nil
}
