package trace

import "testing"

func filterSample() Trace {
	return Trace{
		{PC: 0x1000, Target: 0x2000, Kind: Cond, Gap: 5},
		{PC: 0x1004, Target: 0x3000, Kind: VirtualCall, Gap: 10},
		{PC: 0x1008, Target: 0x4000, Kind: Return, Gap: 3},
		{PC: 0x100C, Target: 0x5000, Kind: SwitchJump, Gap: 7},
		{PC: 0x1010, Target: 0x6000, Kind: IndirectJump, Gap: 2},
	}
}

func TestFilterFoldsGaps(t *testing.T) {
	tr := filterSample()
	ind := tr.Filter(func(r Record) bool { return r.Kind.Indirect() })
	if len(ind) != 3 {
		t.Fatalf("kept %d records", len(ind))
	}
	// The dropped Cond's 5 instructions fold into the vcall.
	if ind[0].Gap != 15 {
		t.Errorf("first gap = %d, want 15", ind[0].Gap)
	}
	// The dropped Return's 3 fold into the switch.
	if ind[1].Gap != 10 {
		t.Errorf("second gap = %d, want 10", ind[1].Gap)
	}
	if ind.Instructions() != tr.Instructions() {
		t.Errorf("instructions not preserved: %d vs %d", ind.Instructions(), tr.Instructions())
	}
}

func TestOfKind(t *testing.T) {
	tr := filterSample()
	got := tr.OfKind(VirtualCall, Return)
	if len(got) != 2 || got[0].Kind != VirtualCall || got[1].Kind != Return {
		t.Errorf("OfKind: %+v", got)
	}
	if len(tr.OfKind()) != 0 {
		t.Error("OfKind() should keep nothing")
	}
}

func TestSlice(t *testing.T) {
	tr := filterSample()
	mid, err := tr.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Indirect branches are vcall(#0), switch(#1), ijump(#2); [1,3) keeps
	// the switch (with its preceding return) and the jump.
	if len(mid) != 3 {
		t.Fatalf("slice kept %d records: %+v", len(mid), mid)
	}
	if mid[0].Kind != Return || mid[1].Kind != SwitchJump || mid[2].Kind != IndirectJump {
		t.Errorf("slice contents: %+v", mid)
	}
	empty, err := tr.Slice(5, 9)
	if err != nil || len(empty) != 0 {
		t.Errorf("out-of-range slice: %v, %v", empty, err)
	}
	if _, err := tr.Slice(-1, 2); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := tr.Slice(3, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestConcat(t *testing.T) {
	a := filterSample()
	b := filterSample()
	c := Concat(a, b)
	if len(c) != len(a)+len(b) {
		t.Errorf("Concat length %d", len(c))
	}
	if len(Concat()) != 0 {
		t.Error("empty Concat")
	}
}

func TestInterleave(t *testing.T) {
	a := Trace{
		{PC: 0x1000, Target: 0x2000, Kind: IndirectJump, Gap: 1},
		{PC: 0x1000, Target: 0x2000, Kind: IndirectJump, Gap: 1},
		{PC: 0x1000, Target: 0x2000, Kind: IndirectJump, Gap: 1},
	}
	b := Trace{
		{PC: 0x9000, Target: 0x8000, Kind: IndirectJump, Gap: 1},
	}
	got, err := Interleave(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("interleave length %d", len(got))
	}
	want := []uint32{0x1000, 0x1000, 0x9000, 0x1000}
	for i, pc := range want {
		if got[i].PC != pc {
			t.Fatalf("record %d pc %#x, want %#x", i, got[i].PC, pc)
		}
	}
	if _, err := Interleave(0, a); err == nil {
		t.Error("zero chunk accepted")
	}
}
