package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing
//
// The v2 trace format's length-framed, CRC32-checksummed section encoding
// doubles as a network wire format: each frame is
//
//	type    uvarint
//	length  uvarint            payload length in bytes
//	payload length bytes
//	crc32   4 bytes LE         IEEE CRC32 of the encoded type+length+payload
//
// FrameWriter and FrameReader expose that framing for stream protocols (the
// internal/serve prediction service is the consumer), and AppendRecords /
// DecodeRecords expose the count-prefixed record-chunk codec used for
// secRecords payloads, so a network frame carries branch records in exactly
// the bytes a v2 trace file would. Frame type numbers are the protocol's
// business; the file decoder's section types (1..3) are reserved.

// Frame is one decoded, checksum-verified wire frame.
type Frame struct {
	// Type is the frame type tag.
	Type uint64
	// Payload is the frame body, freshly allocated per frame; holding it
	// across Next calls is safe.
	Payload []byte
	// Start is the byte offset of the frame's first byte, counted from
	// where the FrameReader started.
	Start int64
}

// FrameWriter emits checksummed frames onto a stream. It buffers; callers
// decide flush points (a network writer flushes after each response batch).
type FrameWriter struct {
	bw *bufio.Writer
}

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriter(w)}
}

// WriteFrame appends one frame to the stream buffer.
func (fw *FrameWriter) WriteFrame(typ uint64, payload []byte) error {
	return writeSection(fw.bw, typ, payload)
}

// Flush writes any buffered frames to the underlying stream.
func (fw *FrameWriter) Flush() error { return fw.bw.Flush() }

// FrameReader decodes checksummed frames from a stream. Any framing or
// checksum violation is reported as a *CorruptError (matching ErrCorrupt);
// a clean end of stream between frames is io.EOF.
type FrameReader struct {
	s sectionScanner
}

// NewFrameReader returns a FrameReader over r. maxPayload bounds the payload
// size a frame may declare (<= 0 selects the trace format's default limit),
// so a hostile length can never force a huge allocation.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = maxSectionPayload
	}
	return &FrameReader{s: sectionScanner{br: bufio.NewReader(r), max: maxPayload}}
}

// Next reads and verifies the next frame. It returns io.EOF untouched only
// at a clean frame boundary; any other failure is a *CorruptError locating
// the damage.
func (fr *FrameReader) Next() (Frame, error) {
	sec, err := fr.s.next()
	if err == io.EOF {
		return Frame{Start: sec.start}, io.EOF
	}
	if err != nil {
		return Frame{Start: sec.start}, corrupt(0, sec.start, "wire frame", err)
	}
	return Frame{Type: sec.typ, Payload: sec.payload, Start: sec.start}, nil
}

// Offset returns the stream offset of the next unread byte.
func (fr *FrameReader) Offset() int64 { return fr.s.off }

// AppendRecords appends the count-prefixed delta-encoding of recs to buf and
// returns the extended slice. Delta state starts at zero, so every encoded
// chunk decodes independently (the same property v2 file chunks have).
func AppendRecords(buf []byte, recs []Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	var prevPC, prevTgt uint32
	for _, r := range recs {
		buf = putRecord(buf, r, prevPC, prevTgt)
		prevPC, prevTgt = r.PC, r.Target
	}
	return buf
}

// DecodeRecords decodes a payload produced by AppendRecords. maxRecords
// bounds the count the payload may declare (<= 0 selects the v2 file chunk
// limit); trailing bytes after the declared records are rejected. Failures
// wrap ErrBadFormat or describe the truncation.
func DecodeRecords(payload []byte, maxRecords int) (Trace, error) {
	if maxRecords <= 0 {
		maxRecords = chunkRecords
	}
	tr, err := decodeChunk(payload, maxRecords)
	if err != nil {
		return nil, fmt.Errorf("trace: records payload: %w", err)
	}
	return tr, nil
}
