package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing
//
// The v2 trace format's length-framed, CRC32-checksummed section encoding
// doubles as a network wire format: each frame is
//
//	type    uvarint
//	length  uvarint            payload length in bytes
//	payload length bytes
//	crc32   4 bytes LE         IEEE CRC32 of the encoded type+length+payload
//
// FrameWriter and FrameReader expose that framing for stream protocols (the
// internal/serve prediction service is the consumer), and AppendRecords /
// DecodeRecords expose the count-prefixed record-chunk codec used for
// secRecords payloads, so a network frame carries branch records in exactly
// the bytes a v2 trace file would. Frame type numbers are the protocol's
// business; the file decoder's section types (1..3) are reserved.

// Frame is one decoded, checksum-verified wire frame.
type Frame struct {
	// Type is the frame type tag.
	Type uint64
	// Payload is the frame body. From a plain NewFrameReader it is freshly
	// allocated per frame and holding it across Next calls is safe. From a
	// NewPooledFrameReader it is borrowed from the reader's BufferPool and
	// only valid until Release — callers that need the old guarantee copy
	// via Copy, or extend the borrow via Retain.
	Payload []byte
	// Start is the byte offset of the frame's first byte, counted from
	// where the FrameReader started.
	Start int64

	// buf is the pooled buffer backing Payload; nil for unpooled frames.
	buf *PooledBuf
}

// Release returns a borrowed payload to its pool. After Release the Payload
// bytes must not be touched. On an unpooled frame (plain NewFrameReader, or
// the zero Frame) Release is a no-op, so callers can release unconditionally.
func (f *Frame) Release() {
	if f.buf != nil {
		f.buf.Release()
		f.buf = nil
		f.Payload = nil
	}
}

// Retain adds a reference to a borrowed payload so it survives a Release by
// another holder; each Retain needs its own Release. No-op on unpooled
// frames (their payload is garbage-collected, holding it is always safe).
func (f *Frame) Retain() { f.buf.Retain() }

// Buffer returns the pooled buffer backing Payload, or nil for unpooled
// frames. It is the ownership hand-off hook: pass it (with the frame's
// reference) to whatever outlives the frame, and have that holder Release.
func (f *Frame) Buffer() *PooledBuf { return f.buf }

// Copy returns a freshly allocated copy of Payload — the escape hatch for
// callers that want the pre-pool "holding it is safe forever" guarantee.
func (f *Frame) Copy() []byte { return append([]byte(nil), f.Payload...) }

// FrameWriter emits checksummed frames onto a stream. It buffers; callers
// decide flush points (a network writer flushes after each response batch).
type FrameWriter struct {
	bw *bufio.Writer
}

// NewFrameWriter returns a FrameWriter over w. The 64 KiB buffer lets a
// writer that defers its flush points coalesce several frames per syscall.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// WriteFrame appends one frame to the stream buffer.
func (fw *FrameWriter) WriteFrame(typ uint64, payload []byte) error {
	return writeSection(fw.bw, typ, payload)
}

// Flush writes any buffered frames to the underlying stream.
func (fw *FrameWriter) Flush() error { return fw.bw.Flush() }

// FrameReader decodes checksummed frames from a stream. Any framing or
// checksum violation is reported as a *CorruptError (matching ErrCorrupt);
// a clean end of stream between frames is io.EOF.
type FrameReader struct {
	s sectionScanner
}

// NewFrameReader returns a FrameReader over r. maxPayload bounds the payload
// size a frame may declare (<= 0 selects the trace format's default limit),
// so a hostile length can never force a huge allocation.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = maxSectionPayload
	}
	// 64 KiB of read buffer batches many small frames (acks, control) into
	// one syscall; payloads at or above the buffer size bypass it entirely
	// (bufio reads them straight into the destination).
	return &FrameReader{s: sectionScanner{br: bufio.NewReaderSize(r, 64<<10), max: maxPayload}}
}

// NewPooledFrameReader is NewFrameReader with payloads borrowed from pool
// instead of allocated per frame: each returned Frame holds one reference and
// the caller must Release it (see Frame.Release/Retain/Copy). A nil pool
// falls back to plain allocation, with Release a cheap no-op.
func NewPooledFrameReader(r io.Reader, maxPayload int, pool *BufferPool) *FrameReader {
	fr := NewFrameReader(r, maxPayload)
	fr.s.pool = pool
	return fr
}

// Next reads and verifies the next frame. It returns io.EOF untouched only
// at a clean frame boundary; any other failure is a *CorruptError locating
// the damage.
func (fr *FrameReader) Next() (Frame, error) {
	sec, err := fr.s.next()
	if err == io.EOF {
		return Frame{Start: sec.start}, io.EOF
	}
	if err != nil {
		return Frame{Start: sec.start}, corrupt(0, sec.start, "wire frame", err)
	}
	return Frame{Type: sec.typ, Payload: sec.payload, Start: sec.start, buf: sec.buf}, nil
}

// Offset returns the stream offset of the next unread byte.
func (fr *FrameReader) Offset() int64 { return fr.s.off }

// AppendRecords appends the count-prefixed delta-encoding of recs to buf and
// returns the extended slice. Delta state starts at zero, so every encoded
// chunk decodes independently (the same property v2 file chunks have).
//
// The loop is putRecord with its dominant shape — every field single-byte —
// open-coded as one 4-byte store, because this is the streaming client's
// per-record encode cost; everything else defers to putRecord.
func AppendRecords(buf []byte, recs []Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	var prevPC, prevTgt uint32
	for _, r := range recs {
		upc := zigzag(int64(int32(r.PC-prevPC)) >> 2)
		utg := zigzag(int64(int32(r.Target-prevTgt)) >> 2)
		if upc|utg|uint64(r.Gap)|uint64(r.Kind) < 1<<7 && cap(buf)-len(buf) >= 4 {
			n := len(buf)
			binary.LittleEndian.PutUint32(buf[n:cap(buf)],
				uint32(upc)|uint32(utg)<<8|uint32(r.Kind)<<16|r.Gap<<24)
			buf = buf[:n+4]
		} else {
			buf = putRecord(buf, r, prevPC, prevTgt)
		}
		prevPC, prevTgt = r.PC, r.Target
	}
	return buf
}

// DecodeRecords decodes a payload produced by AppendRecords. maxRecords
// bounds the count the payload may declare (<= 0 selects the v2 file chunk
// limit); trailing bytes after the declared records are rejected. Failures
// wrap ErrBadFormat or describe the truncation. It is a convenience wrapper
// over RecordIter for callers that want a materialized Trace; the hot path
// iterates in place instead.
func DecodeRecords(payload []byte, maxRecords int) (Trace, error) {
	tr, err := decodeChunk(payload, maxRecords)
	if err != nil {
		return nil, fmt.Errorf("trace: records payload: %w", err)
	}
	return tr, nil
}
