package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/oocsb/ibp/internal/faultio"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		if err := fw.WriteFrame(uint64(16+i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf, 0)
	for i, p := range payloads {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != uint64(16+i) {
			t.Fatalf("frame %d: type %d, want %d", i, f.Type, 16+i)
		}
		if !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: payload %q, want %q", i, f.Payload, p)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestFrameReaderRejectsCorruption(t *testing.T) {
	mk := func() []byte {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.WriteFrame(17, []byte("payload bytes"))
		fw.Flush()
		return buf.Bytes()
	}
	// Flip every byte position in turn; each must surface as ErrCorrupt,
	// never a panic or silent acceptance.
	clean := mk()
	for off := range clean {
		r := faultio.FlipBit(bytes.NewReader(mk()), int64(off), 0x40)
		fr := NewFrameReader(r, 0)
		f, err := fr.Next()
		if err == nil && bytes.Equal(f.Payload, []byte("payload bytes")) && f.Type == 17 {
			t.Fatalf("offset %d: corrupted frame decoded as clean", off)
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("offset %d: error %v does not match ErrCorrupt", off, err)
		}
	}
}

func TestFrameReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame(17, []byte("some payload"))
	fw.Flush()
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		fr := NewFrameReader(faultio.TruncateAfter(bytes.NewReader(full), int64(n)), 0)
		_, err := fr.Next()
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: want ErrCorrupt, got %v", n, err)
		}
	}
}

func TestFrameReaderPayloadLimit(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame(17, make([]byte, 512))
	fw.Flush()
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()), 256)
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized payload: want ErrCorrupt, got %v", err)
	}
	fr = NewFrameReader(bytes.NewReader(buf.Bytes()), 512)
	if _, err := fr.Next(); err != nil {
		t.Fatalf("payload at the limit should decode: %v", err)
	}
}

func TestRecordsPayloadRoundTrip(t *testing.T) {
	tr := genTrace(300)
	payload := AppendRecords(nil, tr)
	back, err := DecodeRecords(payload, len(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("decoded %d records, want %d", len(back), len(tr))
	}
	for i := range tr {
		if back[i] != tr[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], tr[i])
		}
	}
	// Chunks are self-delimiting: delta state resets, so a chunk decoded in
	// isolation equals the same records decoded mid-trace.
	if _, err := DecodeRecords(payload, len(tr)-1); err == nil {
		t.Fatal("over-limit record count accepted")
	}
	if _, err := DecodeRecords(append(payload, 0x00), len(tr)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeRecords(payload[:len(payload)-1], len(tr)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
