package trace

import (
	"bytes"
	"testing"
)

// FuzzRead checks that the trace decoder never panics and that anything it
// accepts re-encodes to a semantically identical trace.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, Trace{
		{PC: 0x1000, Target: 0x2000, Kind: VirtualCall, Gap: 3},
		{PC: 0x1004, Target: 0x3000, Kind: Return, Gap: 1},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IBPT"))
	f.Add([]byte("IBPT\x01\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip length %d != %d", len(back), len(tr))
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("record %d: %+v != %+v", i, back[i], tr[i])
			}
		}
	})
}
