package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds returns representative encodings of both format versions plus
// hand-built malformed prefixes.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	sample := Trace{
		{PC: 0x1000, Target: 0x2000, Kind: VirtualCall, Gap: 3},
		{PC: 0x1004, Target: 0x3000, Kind: Return, Gap: 1},
	}
	var v1, v2, big bytes.Buffer
	if err := WriteV1(&v1, sample); err != nil {
		f.Fatal(err)
	}
	if err := Write(&v2, sample); err != nil {
		f.Fatal(err)
	}
	// A multi-chunk v2 stream so the fuzzer can explore chunk boundaries.
	if err := Write(&big, genTrace(chunkRecords+5)); err != nil {
		f.Fatal(err)
	}
	return [][]byte{
		v1.Bytes(),
		v2.Bytes(),
		big.Bytes(),
		[]byte("IBPT"),
		[]byte("IBPT\x01\x00"),
		[]byte("IBPT\x02"),
		[]byte("IBPT\x02\x03\x00"), // bare end section, missing checksum
		{},
	}
}

// FuzzRead checks that the trace decoders never panic, that anything the
// strict decoder accepts re-encodes to a semantically identical trace, and
// that the lenient decoder's salvage obeys the same invariant.
func FuzzRead(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	roundTrip := func(t *testing.T, tr Trace, what string) {
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode of %s failed: %v", what, err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", what, err)
		}
		if len(back) != len(tr) {
			t.Fatalf("%s round trip length %d != %d", what, len(back), len(tr))
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("%s record %d: %+v != %+v", what, i, back[i], tr[i])
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Lenient mode must never panic, and whatever it salvages must be
		// a valid trace that re-encodes cleanly — even when it also
		// reports corruption.
		salvaged, lerr := ReadLenient(bytes.NewReader(data))
		if lerr != nil && !errors.Is(lerr, ErrCorrupt) {
			t.Fatalf("lenient error is not ErrCorrupt: %v", lerr)
		}
		if salvaged != nil {
			roundTrip(t, salvaged, "salvaged trace")
		}

		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Strict acceptance implies lenient agreement.
		if lerr != nil {
			t.Fatalf("strict accepted what lenient flagged: %v", lerr)
		}
		if len(salvaged) != len(tr) {
			t.Fatalf("lenient decoded %d records, strict %d", len(salvaged), len(tr))
		}
		roundTrip(t, tr, "accepted trace")
	})
}

// FuzzWireFrame drives the exported wire-frame decode path — the framing the
// network prediction service (internal/serve) reads straight off untrusted
// sockets — over arbitrary bytes: the frame scanner and the records-payload
// codec must never panic, every accepted frame must be ErrCorrupt-clean, and
// every accepted records payload must re-encode to identical bytes.
func FuzzWireFrame(f *testing.F) {
	// Clean frame streams (empty payload, records payload, several frames)
	// plus damaged prefixes.
	sample := genTrace(64)
	var clean bytes.Buffer
	fw := NewFrameWriter(&clean)
	fw.WriteFrame(16, nil)
	fw.WriteFrame(17, AppendRecords(nil, sample))
	fw.WriteFrame(18, []byte(`{"benchmark":"gcc"}`))
	fw.Flush()
	f.Add(clean.Bytes())
	f.Add(AppendRecords(nil, sample))
	f.Add([]byte{0x11, 0x01, 0x00})
	f.Add([]byte{})
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<16)
		for {
			frame, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("frame error is not ErrCorrupt: %v", err)
				}
				break
			}
			// Whatever the payload, decoding it as records must not panic,
			// and an accepted decode must survive a re-encode/decode cycle
			// unchanged (varints may be non-canonical on the wire, so byte
			// identity is not required — record identity is).
			recs, derr := DecodeRecords(frame.Payload, 4096)

			// Cross-check the in-place iterator against the batch decode:
			// walking the same payload one record at a time must yield the
			// same records and the same typed verdict (DecodeRecords runs on
			// NextBatch, so this pins Next and NextBatch to each other too).
			var itRecs Trace
			it, itErr := NewRecordIter(frame.Payload, 4096)
			if itErr == nil {
				for {
					r, ok := it.Next()
					if !ok {
						break
					}
					itRecs = append(itRecs, r)
				}
				itErr = it.Err()
			}
			if (derr == nil) != (itErr == nil) {
				t.Fatalf("iterator and DecodeRecords disagree: %v vs %v", itErr, derr)
			}
			if derr != nil {
				if errors.Is(derr, ErrBadFormat) != errors.Is(itErr, ErrBadFormat) ||
					errors.Is(derr, io.ErrUnexpectedEOF) != errors.Is(itErr, io.ErrUnexpectedEOF) {
					t.Fatalf("iterator and DecodeRecords error types disagree: %v vs %v", itErr, derr)
				}
				continue
			}
			if len(itRecs) != len(recs) {
				t.Fatalf("iterator decoded %d records, DecodeRecords %d", len(itRecs), len(recs))
			}
			for i := range recs {
				if itRecs[i] != recs[i] {
					t.Fatalf("iterator record %d: %+v != %+v", i, itRecs[i], recs[i])
				}
			}
			back, rerr := DecodeRecords(AppendRecords(nil, recs), 4096)
			if rerr != nil {
				t.Fatalf("re-encoded records failed to decode: %v", rerr)
			}
			if len(back) != len(recs) {
				t.Fatalf("round trip decoded %d records, want %d", len(back), len(recs))
			}
			for i := range recs {
				if back[i] != recs[i] {
					t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
				}
			}
		}
	})
}
