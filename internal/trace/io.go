package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format
//
//	magic   "IBPT"            4 bytes
//	version uvarint           currently 1
//	count   uvarint           number of records
//	records count times:
//	    pcDelta   varint     (pc - prevPC) / 4, zigzag
//	    tgtDelta  varint     (target - prevTarget) / 4, zigzag
//	    kind      uvarint
//	    gap       uvarint
//
// PC and target deltas are word deltas from the previous record, which keeps
// typical loop traces to a few bytes per record.

const (
	magic         = "IBPT"
	formatVersion = 1
)

// ErrBadFormat is returned when a trace stream does not start with the
// expected magic or uses an unsupported version.
var ErrBadFormat = errors.New("trace: bad format")

// Write encodes the trace to w in the binary trace format.
func Write(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(formatVersion); err != nil {
		return err
	}
	if err := putU(uint64(len(t))); err != nil {
		return err
	}
	var prevPC, prevTgt uint32
	for _, r := range t {
		if err := putI(int64(int32(r.PC-prevPC)) / 4); err != nil {
			return err
		}
		if err := putI(int64(int32(r.Target-prevTgt)) / 4); err != nil {
			return err
		}
		if err := putU(uint64(r.Kind)); err != nil {
			return err
		}
		if err := putU(uint64(r.Gap)); err != nil {
			return err
		}
		prevPC, prevTgt = r.PC, r.Target
	}
	return bw.Flush()
}

// Read decodes a trace previously encoded with Write.
func Read(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 28
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}
	out := make(Trace, 0, count)
	var prevPC, prevTgt uint32
	for i := uint64(0); i < count; i++ {
		pcd, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		tgd, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d target: %w", i, err)
		}
		kind, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d kind: %w", i, err)
		}
		if kind >= numKinds {
			return nil, fmt.Errorf("%w: record %d kind %d", ErrBadFormat, i, kind)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d gap: %w", i, err)
		}
		if gap == 0 || gap > 1<<32-1 {
			return nil, fmt.Errorf("%w: record %d gap %d", ErrBadFormat, i, gap)
		}
		pc := prevPC + uint32(pcd*4)
		tgt := prevTgt + uint32(tgd*4)
		out = append(out, Record{PC: pc, Target: tgt, Kind: Kind(kind), Gap: uint32(gap)})
		prevPC, prevTgt = pc, tgt
	}
	return out, nil
}

// Dump writes a human-readable listing of the first n records (all records
// if n <= 0) to w, one record per line.
func Dump(w io.Writer, t Trace, n int) error {
	if n <= 0 || n > len(t) {
		n = len(t)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		r := t[i]
		if _, err := fmt.Fprintf(bw, "%8d  %-6s  pc=%08x  target=%08x  gap=%d\n",
			i, r.Kind, r.PC, r.Target, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}
