package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace formats
//
// Both versions open with the same preamble:
//
//	magic   "IBPT"            4 bytes
//	version uvarint           1 or 2
//
// Version 1 (legacy, unchecksummed):
//
//	count   uvarint           number of records
//	records count times (see record codec below)
//
// Version 2 is the length-framed, CRC32-checksummed format documented in
// io_v2.go; Write emits v2 and Read accepts both.
//
// Record codec (shared by both versions):
//
//	pcDelta   varint     (pc - prevPC) / 4, zigzag
//	tgtDelta  varint     (target - prevTarget) / 4, zigzag
//	kind      uvarint
//	gap       uvarint
//
// PC and target deltas are word deltas from the previous record, which keeps
// typical loop traces to a few bytes per record.

const (
	magic     = "IBPT"
	version1  = 1
	version2  = 2
	maxRecord = 4 * binary.MaxVarintLen64 // encoded size upper bound
)

// maxReasonable bounds the record count any header may claim before the
// stream is rejected outright.
const maxReasonable = 1 << 28

// maxPrealloc caps the capacity allocated up front from a header-declared
// record count (64 KiB worth of in-memory records); a hostile header cannot
// force a multi-GiB allocation, the slice simply grows as records decode.
const maxPrealloc = 64 * 1024 / 16 // 16 bytes per in-memory Record

// ErrBadFormat is returned when a trace stream does not start with the
// expected magic or uses an unsupported version.
var ErrBadFormat = errors.New("trace: bad format")

// preallocCount clamps a header-declared record count to a safe initial
// slice capacity.
func preallocCount(declared uint64) int {
	if declared > maxPrealloc {
		return maxPrealloc
	}
	return int(declared)
}

// appendUv appends the uvarint encoding of v with open-coded 1- and 2-byte
// fast paths (the dominant sizes for delta-coded records); larger values
// fall through to the stdlib loop.
func appendUv(buf []byte, v uint64) []byte {
	if v < 1<<7 {
		return append(buf, byte(v))
	}
	if v < 1<<14 {
		return append(buf, byte(v)|0x80, byte(v>>7))
	}
	if v < 1<<21 {
		return append(buf, byte(v)|0x80, byte(v>>7)|0x80, byte(v>>14))
	}
	return binary.AppendUvarint(buf, v)
}

// zigzag is the varint sign-folding used by the record codec (identical to
// encoding/binary's).
func zigzag(v int64) uint64 {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uv
}

// putRecord appends the delta-encoding of r (relative to the previous
// record) to buf and returns the extended slice. Capacity headroom for a
// worst-case record is ensured once up front, so the common shapes — pc,
// kind and gap single-byte with a target delta of up to three bytes — are
// emitted as a single 4- or 8-byte store into the spare capacity (the
// canonical byte sequences are unchanged; the wide store just writes the
// whole record at once, and at most four dead bytes past the returned
// length). The rest goes field-by-field through appendUv.
func putRecord(buf []byte, r Record, prevPC, prevTgt uint32) []byte {
	upc := zigzag(int64(int32(r.PC-prevPC)) >> 2)
	utg := zigzag(int64(int32(r.Target-prevTgt)) >> 2)
	gap := uint64(r.Gap)
	if cap(buf)-len(buf) < maxRecord {
		buf = append(buf, make([]byte, maxRecord)...)[:len(buf)]
	}
	n := len(buf)
	if upc|gap|uint64(r.Kind) < 1<<7 {
		b := buf[n:cap(buf)]
		switch {
		case utg < 1<<7:
			binary.LittleEndian.PutUint32(b,
				uint32(upc)|uint32(utg)<<8|uint32(r.Kind)<<16|uint32(gap)<<24)
			return buf[:n+4]
		case utg < 1<<14:
			binary.LittleEndian.PutUint64(b,
				upc|(utg&0x7f|0x80)<<8|utg>>7<<16|uint64(r.Kind)<<24|gap<<32)
			return buf[:n+5]
		case utg < 1<<21:
			binary.LittleEndian.PutUint64(b,
				upc|(utg&0x7f|0x80)<<8|(utg>>7&0x7f|0x80)<<16|utg>>14<<24|uint64(r.Kind)<<32|gap<<40)
			return buf[:n+6]
		}
	}
	buf = appendUv(buf, upc)
	buf = appendUv(buf, utg)
	buf = appendUv(buf, uint64(r.Kind))
	return appendUv(buf, gap)
}

// readRecord decodes one record from br relative to the previous one. The
// index i is only used in error messages.
func readRecord(br io.ByteReader, prevPC, prevTgt uint32, i uint64) (Record, error) {
	pcd, err := binary.ReadVarint(br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d pc: %w", i, err)
	}
	tgd, err := binary.ReadVarint(br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d target: %w", i, err)
	}
	kind, err := binary.ReadUvarint(br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d kind: %w", i, err)
	}
	if kind >= numKinds {
		return Record{}, fmt.Errorf("%w: record %d kind %d", ErrBadFormat, i, kind)
	}
	gap, err := binary.ReadUvarint(br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d gap: %w", i, err)
	}
	if gap == 0 || gap > 1<<32-1 {
		return Record{}, fmt.Errorf("%w: record %d gap %d", ErrBadFormat, i, gap)
	}
	return Record{
		PC:     prevPC + uint32(pcd*4),
		Target: prevTgt + uint32(tgd*4),
		Kind:   Kind(kind),
		Gap:    uint32(gap),
	}, nil
}

// Write encodes the trace to w in the current (v2, checksummed) binary trace
// format.
func Write(w io.Writer, t Trace) error {
	return writeV2(w, t)
}

// WriteV1 encodes the trace in the legacy unchecksummed v1 format, kept for
// compatibility testing and for producing traces readable by old tools.
func WriteV1(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(version1); err != nil {
		return err
	}
	if err := putU(uint64(len(t))); err != nil {
		return err
	}
	var prevPC, prevTgt uint32
	rec := make([]byte, 0, maxRecord)
	for _, r := range t {
		rec = putRecord(rec[:0], r, prevPC, prevTgt)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		prevPC, prevTgt = r.PC, r.Target
	}
	return bw.Flush()
}

// readPreamble consumes the magic and version from br.
func readPreamble(br *bufio.Reader) (uint64, error) {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return 0, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("trace: reading version: %w", err)
	}
	return version, nil
}

// Read decodes a trace in either format version. Version 2 streams are
// verified strictly: any framing or checksum violation is reported as a
// *CorruptError (matching ErrCorrupt) and no records are returned. Use
// ReadLenient to salvage the valid prefix instead.
func Read(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	version, err := readPreamble(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case version1:
		return readV1(br)
	case version2:
		tr, err := readV2(br, true)
		if err != nil {
			return nil, err
		}
		return tr, nil
	}
	return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
}

// ReadLenient decodes as much of the stream as it can. On a clean stream it
// behaves like Read. On a truncated or corrupted stream it returns the
// records decoded before the damage together with a *CorruptError describing
// where decoding stopped; the salvaged prefix is always a valid Trace that
// re-encodes cleanly. The error matches both ErrCorrupt and, via Unwrap, the
// underlying cause.
func ReadLenient(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	version, err := readPreamble(br)
	if err != nil {
		return nil, corrupt(0, 0, "preamble", err)
	}
	switch version {
	case version1:
		return readV1Lenient(br)
	case version2:
		return readV2(br, false)
	}
	return nil, corrupt(0, 0, fmt.Sprintf("unsupported version %d", version), ErrBadFormat)
}

// readV1 decodes a v1 stream positioned after the preamble.
func readV1(br *bufio.Reader) (Trace, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}
	out := make(Trace, 0, preallocCount(count))
	var prevPC, prevTgt uint32
	for i := uint64(0); i < count; i++ {
		r, err := readRecord(br, prevPC, prevTgt, i)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		prevPC, prevTgt = r.PC, r.Target
	}
	return out, nil
}

// readV1Lenient decodes a v1 stream, keeping the records decoded before the
// first error. v1 has no checksums, so only truncation and structural
// violations are detectable.
func readV1Lenient(br *bufio.Reader) (Trace, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corrupt(0, 0, "record count", err)
	}
	if count > maxReasonable {
		return nil, corrupt(0, 0, fmt.Sprintf("implausible record count %d", count), ErrBadFormat)
	}
	out := make(Trace, 0, preallocCount(count))
	var prevPC, prevTgt uint32
	for i := uint64(0); i < count; i++ {
		r, err := readRecord(br, prevPC, prevTgt, i)
		if err != nil {
			return out, corrupt(len(out), 0, fmt.Sprintf("v1 record %d", i), err)
		}
		out = append(out, r)
		prevPC, prevTgt = r.PC, r.Target
	}
	return out, nil
}

// Dump writes a human-readable listing of the first n records (all records
// if n <= 0) to w, one record per line.
func Dump(w io.Writer, t Trace, n int) error {
	if n <= 0 || n > len(t) {
		n = len(t)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		r := t[i]
		if _, err := fmt.Fprintf(bw, "%8d  %-6s  pc=%08x  target=%08x  gap=%d\n",
			i, r.Kind, r.PC, r.Target, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}
