package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version 2 trace format
//
// After the shared "IBPT" + version preamble, a v2 stream is a sequence of
// length-framed, CRC32-checksummed sections:
//
//	type    uvarint
//	length  uvarint            payload length in bytes
//	payload length bytes
//	crc32   4 bytes LE         IEEE CRC32 of the encoded type+length+payload
//
// Section types:
//
//	secCount (1)    payload: uvarint total record count (advisory; used to
//	                size the decode buffer, verified at end of stream)
//	secRecords (2)  payload: uvarint chunk record count, then that many
//	                records in the shared record codec. Delta state resets
//	                at every chunk boundary (prevPC = prevTarget = 0), so
//	                each chunk decodes independently and a damaged chunk
//	                never poisons its neighbours.
//	secEnd (3)      empty payload; marks a clean end of trace.
//
// Unknown section types with a valid checksum are skipped (forward
// compatibility). Strict readers reject any framing or checksum violation
// with *CorruptError; lenient readers salvage every intact chunk before the
// damage.

const (
	secCount   = 1
	secRecords = 2
	secEnd     = 3

	// chunkRecords is the number of records per secRecords section; small
	// enough that a single corrupted chunk loses little data, large enough
	// that framing overhead (≤ ~12 bytes per section) is negligible.
	chunkRecords = 4096

	// maxSectionPayload bounds a section's declared payload so a corrupted
	// length cannot force a huge allocation.
	maxSectionPayload = 1 << 24
)

// ErrCorrupt is the sentinel matched by every corruption error produced by
// the strict and lenient readers: errors.Is(err, ErrCorrupt) reports whether
// a stream was damaged (as opposed to merely using an unknown format).
var ErrCorrupt = errors.New("trace: corrupt stream")

// CorruptError describes where and why trace decoding stopped. It matches
// ErrCorrupt via errors.Is and unwraps to the underlying cause.
type CorruptError struct {
	// Records is the number of records salvaged before the damage.
	Records int
	// Offset is the byte offset (relative to the start of the section
	// stream, after the preamble) at which the damaged section began; 0
	// when the preamble itself was damaged or the offset is unknown.
	Offset int64
	// Detail says what was being decoded when the damage was found.
	Detail string
	// Err is the underlying cause.
	Err error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt stream at byte %d (%s, %d records salvaged): %v",
		e.Offset, e.Detail, e.Records, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Is reports that a CorruptError matches the ErrCorrupt sentinel.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// corrupt builds a *CorruptError.
func corrupt(records int, offset int64, detail string, err error) error {
	return &CorruptError{Records: records, Offset: offset, Detail: detail, Err: err}
}

// errChecksum is the cause recorded when a section's CRC32 does not match.
var errChecksum = errors.New("checksum mismatch")

// writeSection frames one section: varint header, payload, CRC32 trailer.
func writeSection(bw *bufio.Writer, typ uint64, payload []byte) error {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], typ)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	sum := crc32.ChecksumIEEE(hdr[:n])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if _, err := bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], sum)
	_, err := bw.Write(cb[:])
	return err
}

// writeV2 encodes the trace in the v2 sectioned format.
func writeV2(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(vbuf[:], version2)
	if _, err := bw.Write(vbuf[:n]); err != nil {
		return err
	}
	payload := make([]byte, 0, chunkRecords*maxRecord/8)
	payload = binary.AppendUvarint(payload, uint64(len(t)))
	if err := writeSection(bw, secCount, payload); err != nil {
		return err
	}
	for start := 0; start < len(t); start += chunkRecords {
		end := min(start+chunkRecords, len(t))
		payload = binary.AppendUvarint(payload[:0], uint64(end-start))
		var prevPC, prevTgt uint32
		for _, r := range t[start:end] {
			payload = putRecord(payload, r, prevPC, prevTgt)
			prevPC, prevTgt = r.PC, r.Target
		}
		if err := writeSection(bw, secRecords, payload); err != nil {
			return err
		}
	}
	if err := writeSection(bw, secEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// sectionScanner reads framed sections while tracking byte offsets and the
// raw header bytes needed for checksum verification.
type sectionScanner struct {
	br   *bufio.Reader
	off  int64       // offset of the next unread byte, from the start of sections
	max  int         // payload size limit; 0 means maxSectionPayload
	pool *BufferPool // payload source; nil allocates per section
	hdr  []byte      // header scratch, reused across next calls
	crc  [4]byte     // checksum scratch; a local would escape through io.ReadFull
}

// section is one decoded, checksum-verified frame.
type section struct {
	start   int64 // offset of the section's first byte
	typ     uint64
	payload []byte
	buf     *PooledBuf // backing pooled buffer; nil when payload is unpooled
}

// next reads and verifies the next section. It returns io.EOF (untouched)
// only at a clean section boundary; any other error means the frame at
// s.start was damaged (any borrowed payload is already back in the pool).
func (s *sectionScanner) next() (section, error) {
	sec := section{start: s.off}
	s.hdr = s.hdr[:0]
	readUvarint := func() (uint64, error) {
		var v uint64
		for shift := uint(0); ; shift += 7 {
			b, err := s.br.ReadByte()
			if err != nil {
				return 0, err
			}
			s.off++
			s.hdr = append(s.hdr, b)
			if shift >= 64 {
				return 0, fmt.Errorf("%w: varint overflow", ErrBadFormat)
			}
			v |= uint64(b&0x7f) << shift
			if b&0x80 == 0 {
				return v, nil
			}
		}
	}
	typ, err := readUvarint()
	if err != nil {
		if err == io.EOF && len(s.hdr) == 0 {
			return sec, io.EOF
		}
		return sec, fmt.Errorf("section type: %w", noEOF(err))
	}
	sec.typ = typ
	plen, err := readUvarint()
	if err != nil {
		return sec, fmt.Errorf("section length: %w", noEOF(err))
	}
	limit := uint64(maxSectionPayload)
	if s.max > 0 {
		limit = uint64(s.max)
	}
	if plen > limit {
		return sec, fmt.Errorf("%w: section payload %d bytes", ErrBadFormat, plen)
	}
	fail := func(detail string, err error) (section, error) {
		if sec.buf != nil {
			sec.buf.Release()
			sec.buf, sec.payload = nil, nil
		}
		return sec, fmt.Errorf("%s: %w", detail, err)
	}
	if s.pool != nil {
		sec.buf = s.pool.Get(int(plen))
		sec.payload = sec.buf.Bytes()
	} else {
		sec.payload = make([]byte, plen)
	}
	if _, err := io.ReadFull(s.br, sec.payload); err != nil {
		return fail("section payload", noEOF(err))
	}
	s.off += int64(plen)
	if _, err := io.ReadFull(s.br, s.crc[:]); err != nil {
		return fail("section checksum", noEOF(err))
	}
	s.off += 4
	sum := crc32.ChecksumIEEE(s.hdr)
	sum = crc32.Update(sum, crc32.IEEETable, sec.payload)
	if got := binary.LittleEndian.Uint32(s.crc[:]); got != sum {
		if sec.buf != nil {
			sec.buf.Release()
			sec.buf, sec.payload = nil, nil
		}
		return sec, fmt.Errorf("%w: want %08x, got %08x", errChecksum, sum, got)
	}
	return sec, nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: inside a frame, running
// out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeChunk decodes one records payload (delta state starts at zero) into
// a materialized Trace, rejecting chunks that declare more than max records.
// It is RecordIter with an append loop; the two cannot drift.
func decodeChunk(payload []byte, max int) (Trace, error) {
	it, err := NewRecordIter(payload, max)
	if err != nil {
		return nil, err
	}
	out := make(Trace, it.Len())
	out = out[:it.NextBatch(out)]
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// readV2 decodes a v2 stream positioned after the preamble. In strict mode
// any violation returns (nil, *CorruptError). In lenient mode every record
// decoded before the damage is returned alongside the *CorruptError; a
// clean stream returns a nil error in both modes.
func readV2(br *bufio.Reader, strict bool) (Trace, error) {
	s := &sectionScanner{br: br}
	var out Trace
	declared := int64(-1)
	fail := func(off int64, detail string, err error) (Trace, error) {
		cerr := corrupt(len(out), off, detail, err)
		if strict {
			return nil, cerr
		}
		return out, cerr
	}
	for {
		sec, err := s.next()
		if err == io.EOF {
			return fail(sec.start, "missing end-of-trace section", io.ErrUnexpectedEOF)
		}
		if err != nil {
			return fail(sec.start, "section frame", err)
		}
		switch sec.typ {
		case secCount:
			n, err := binary.ReadUvarint(bytes.NewReader(sec.payload))
			if err != nil || n > maxReasonable {
				return fail(sec.start, "count section", ErrBadFormat)
			}
			declared = int64(n)
			if out == nil {
				out = make(Trace, 0, preallocCount(n))
			}
		case secRecords:
			chunk, err := decodeChunk(sec.payload, chunkRecords)
			if err != nil {
				return fail(sec.start, "records section", err)
			}
			if len(out)+len(chunk) > maxReasonable {
				return fail(sec.start, "records section", fmt.Errorf("%w: implausible record count", ErrBadFormat))
			}
			out = append(out, chunk...)
		case secEnd:
			if declared >= 0 && declared != int64(len(out)) {
				return fail(sec.start, fmt.Sprintf("record count: declared %d, decoded %d", declared, len(out)), ErrBadFormat)
			}
			if out == nil {
				out = Trace{}
			}
			return out, nil
		default:
			// Checksummed but unknown: an extension section from a newer
			// writer. Skip it.
		}
	}
}
