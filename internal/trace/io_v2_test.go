package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"github.com/oocsb/ibp/internal/faultio"
)

// genTrace builds a deterministic synthetic trace of n records.
func genTrace(n int) Trace {
	rng := rand.New(rand.NewSource(42))
	out := make(Trace, 0, n)
	pc, tgt := uint32(0x1000), uint32(0x8000)
	for i := 0; i < n; i++ {
		pc += uint32(rng.Intn(64)) * 4
		tgt += uint32(rng.Intn(256)) * 4
		out = append(out, Record{
			PC:     pc,
			Target: tgt,
			Kind:   Kind(rng.Intn(int(numKinds))),
			Gap:    uint32(1 + rng.Intn(100)),
		})
	}
	return out
}

func encode(t *testing.T, tr Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func mustEqual(t *testing.T, got, want Trace) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestV2RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, chunkRecords - 1, chunkRecords, chunkRecords + 1, 3*chunkRecords + 17} {
		tr := genTrace(n)
		data := encode(t, tr)
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: Read: %v", n, err)
		}
		mustEqual(t, got, tr)
		// Lenient mode must agree on clean streams.
		got, err = ReadLenient(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: ReadLenient: %v", n, err)
		}
		mustEqual(t, got, tr)
	}
}

func TestReadV1Compatibility(t *testing.T) {
	tr := genTrace(500)
	var buf bytes.Buffer
	if err := WriteV1(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read v1: %v", err)
	}
	mustEqual(t, got, tr)
	got, err = ReadLenient(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLenient v1: %v", err)
	}
	mustEqual(t, got, tr)
}

// TestV2BitFlipStrictVsLenient flips one bit at every offset of a small v2
// stream: strict mode must reject the change or decode the identical trace
// (flips in skippable regions cannot occur — every byte is covered by a
// checksum, so any flip that still parses must parse to the same records
// only if it was... it must simply never yield different records).
func TestV2BitFlipStrict(t *testing.T) {
	tr := genTrace(300)
	data := encode(t, tr)
	for off := 0; off < len(data); off++ {
		flipped := bytes.Clone(data)
		flipped[off] ^= 0x04
		got, err := Read(bytes.NewReader(flipped))
		if err == nil {
			// The only acceptable silent outcome is a flip with no
			// semantic effect; with CRC32 over every frame there is none,
			// but guard against decoder bugs by requiring identity.
			mustEqual(t, got, tr)
		}
	}
}

func TestV2BitFlipLenientSalvagesPrefix(t *testing.T) {
	tr := genTrace(3*chunkRecords + 100)
	data := encode(t, tr)
	// Flip a bit roughly in the middle of the stream (inside chunk 2 of 4).
	off := len(data) / 2
	flipped := bytes.Clone(data)
	flipped[off] ^= 0x40

	if _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict Read of flipped stream: err = %v, want ErrCorrupt", err)
	}

	got, err := ReadLenient(bytes.NewReader(flipped))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadLenient err = %v, want ErrCorrupt", err)
	}
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("err %T is not *CorruptError", err)
	}
	if cerr.Records != len(got) {
		t.Errorf("CorruptError.Records = %d, salvaged %d", cerr.Records, len(got))
	}
	// The salvage must be a whole-chunk prefix of the original.
	if len(got) == 0 || len(got)%chunkRecords != 0 || len(got) >= len(tr) {
		t.Fatalf("salvaged %d records from %d (chunk %d)", len(got), len(tr), chunkRecords)
	}
	mustEqual(t, got, tr[:len(got)])
}

func TestV2TruncationSalvage(t *testing.T) {
	tr := genTrace(2*chunkRecords + 50)
	data := encode(t, tr)
	for _, cut := range []int{len(data) - 1, len(data) / 2, len(data) / 4} {
		r := faultio.TruncateAfter(bytes.NewReader(data), int64(cut))
		got, err := ReadLenient(r)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: err = %v, want ErrCorrupt", cut, err)
		}
		mustEqual(t, got, tr[:len(got)])
		// Strict mode must reject outright.
		if _, err := Read(faultio.TruncateAfter(bytes.NewReader(data), int64(cut))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: strict err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestV2ReadErrorMidStream(t *testing.T) {
	tr := genTrace(chunkRecords + 10)
	data := encode(t, tr)
	boom := errors.New("disk on fire")
	got, err := ReadLenient(faultio.ErrAfter(bytes.NewReader(data), int64(len(data)/2), boom))
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrCorrupt wrapping boom", err)
	}
	mustEqual(t, got, tr[:len(got)])
}

// TestV2SalvageReencodes: the lenient-mode invariant — whatever is salvaged
// must itself round-trip through the encoder.
func TestV2SalvageReencodes(t *testing.T) {
	tr := genTrace(2 * chunkRecords)
	data := encode(t, tr)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		flipped := bytes.Clone(data)
		flipped[rng.Intn(len(flipped))] ^= 1 << rng.Intn(8)
		got, err := ReadLenient(bytes.NewReader(flipped))
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trial %d: unexpected error type %v", trial, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, got); err != nil {
			t.Fatalf("trial %d: salvage does not re-encode: %v", trial, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: salvage does not re-decode: %v", trial, err)
		}
		mustEqual(t, back, got)
	}
}

func TestV2ShortWriteSurfaces(t *testing.T) {
	// bufio must surface a destination that under-reports writes; Write
	// must not silently succeed.
	tr := genTrace(100)
	err := Write(faultio.ShortWriter(io.Discard, 3), tr)
	if err == nil {
		t.Fatal("Write to a short writer succeeded")
	}
}

func TestV2WriteErrorPropagates(t *testing.T) {
	tr := genTrace(chunkRecords * 2)
	err := Write(faultio.ErrAfterWriter(io.Discard, 1000, nil), tr)
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestV1LenientTruncation(t *testing.T) {
	tr := genTrace(1000)
	var buf bytes.Buffer
	if err := WriteV1(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	got, err := ReadLenient(faultio.TruncateAfter(bytes.NewReader(data), int64(len(data)/2)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(got) == 0 || len(got) >= len(tr) {
		t.Fatalf("salvaged %d of %d", len(got), len(tr))
	}
	mustEqual(t, got, tr[:len(got)])
}

// TestHostileHeaderAllocation: a tiny stream claiming 2^28 records must not
// pre-allocate gigabytes. The claim is structurally valid, so decoding fails
// on truncation — the point is that it fails fast and small.
func TestHostileHeaderAllocation(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(version1)
	// uvarint 2^28 = 0x10000000.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x01})
	before := allocBytes()
	_, err := Read(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("hostile header accepted")
	}
	if grew := allocBytes() - before; grew > 8<<20 {
		t.Fatalf("hostile header allocated %d bytes", grew)
	}
}

// allocBytes reports cumulative heap allocation, for coarse allocation caps.
func allocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

func TestCorruptErrorMessage(t *testing.T) {
	err := corrupt(12, 345, "records section", errChecksum)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("corrupt() does not match ErrCorrupt")
	}
	var cerr *CorruptError
	if !errors.As(err, &cerr) || cerr.Records != 12 || cerr.Offset != 345 {
		t.Fatalf("bad CorruptError: %#v", err)
	}
	if msg := err.Error(); msg == "" {
		t.Fatal("empty message")
	}
}
