package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// In-place record iteration
//
// RecordIter walks a count-prefixed record chunk (the secRecords payload and
// FrameRecords body encoding) directly in the payload bytes: no []Record is
// materialized and nothing is allocated on the happy path. It is the serving
// hot path's decoder — a shard worker drives the predictor straight off the
// iterator while the payload sits in a borrowed frame buffer — and the batch
// DecodeRecords (and the v2 file reader's chunk decode) are reimplemented on
// top of it, so the two stay semantically identical by construction.

// RecordIter iterates the records of one chunk payload in place. Create with
// NewRecordIter; the iterator keeps a reference to the payload slice, so with
// a pooled frame the payload must stay live (unreleased) until iteration is
// done.
type RecordIter struct {
	p       []byte
	off     int
	n       int // declared record count
	i       int // records decoded so far
	prevPC  uint32
	prevTgt uint32
	err     error
}

// uvarint decodes one uvarint at it.off with a fast path for the single-byte
// encodings that dominate delta-coded traces.
func (it *RecordIter) uvarint() (uint64, bool) {
	v, off := uvarintAt(it.p, it.off)
	if off < 0 {
		return 0, false
	}
	it.off = off
	return v, true
}

// varint decodes one zigzag varint at it.off.
func (it *RecordIter) varint() (int64, bool) {
	uv, ok := it.uvarint()
	if !ok {
		return 0, false
	}
	return int64(uv>>1) ^ -int64(uv&1), true
}

// uvarintAt decodes one uvarint at p[off:], returning the value and the
// offset past it (-1 offset on truncation or a >64-bit encoding). The
// multi-byte tail lives in its own function so Next's inlined 1-byte fast
// paths stay small.
func uvarintAt(p []byte, off int) (uint64, int) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if off >= len(p) {
			return 0, -1
		}
		b := p[off]
		off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, off
		}
	}
	return 0, -1
}

// NewRecordIter parses the chunk's count prefix and returns an iterator over
// payload. maxRecords bounds the declared count (<= 0 selects the v2 file
// chunk limit). The errors match decodeChunk's: a truncated count is
// io.ErrUnexpectedEOF, an oversized count wraps ErrBadFormat.
func NewRecordIter(payload []byte, maxRecords int) (RecordIter, error) {
	if maxRecords <= 0 {
		maxRecords = chunkRecords
	}
	it := RecordIter{p: payload}
	n, ok := it.uvarint()
	if !ok {
		return it, fmt.Errorf("chunk count: %w", io.ErrUnexpectedEOF)
	}
	if n > uint64(maxRecords) {
		return it, fmt.Errorf("%w: chunk of %d records", ErrBadFormat, n)
	}
	it.n = int(n)
	if it.n == 0 && it.off != len(payload) {
		// A non-empty chunk finds trailing bytes after its last record (see
		// Next); the empty chunk has to be checked here.
		return it, fmt.Errorf("%w: %d trailing bytes in chunk", ErrBadFormat, len(payload)-it.off)
	}
	return it, nil
}

// Len returns the chunk's declared record count.
func (it *RecordIter) Len() int { return it.n }

// Next decodes the next record in place. It returns ok=false at the end of
// the chunk or on a malformed record; Err distinguishes the two.
//
// The field decodes are open-coded on local p/off with a 1-byte fast path
// each (the dominant case for delta-coded traces), falling back to uvarintAt
// for multi-byte values; it.off is written back once per record. This loop
// is the serving hot path's inner decode — it was the top profile entry as a
// method-call-per-varint implementation.
func (it *RecordIter) Next() (Record, bool) {
	if it.i >= it.n || it.err != nil {
		return Record{}, false
	}
	p, off := it.p, it.off

	var upc, utg, kind, gap uint64
	// Packed fast paths: one 8-byte load and one mask test decode the two
	// shapes that dominate delta-coded traces (putRecord emits the mirror
	// encodings) — four one-byte fields, or a one-byte pc delta with a
	// three-byte target delta. Together these cover ~95% of records.
	if off+8 <= len(p) {
		u := binary.LittleEndian.Uint64(p[off:])
		if u&0x80808080 == 0 {
			upc = u & 0x7f
			utg = u >> 8 & 0x7f
			kind = u >> 16 & 0x7f
			gap = u >> 24 & 0x7f
			off += 4
			goto unpacked
		}
		if u&0x0000808080808080 == 0x0000000000808000 {
			upc = u & 0x7f
			utg = u>>8&0x7f | u>>9&(0x7f<<7) | u>>10&(0x7f<<14)
			kind = u >> 32 & 0x7f
			gap = u >> 40 & 0x7f
			off += 6
			goto unpacked
		}
	}
	if off < len(p) && p[off] < 0x80 {
		upc = uint64(p[off])
		off++
	} else if upc, off = uvarintAt(p, off); off < 0 {
		return it.fail("pc")
	}
	if off < len(p) && p[off] < 0x80 {
		utg = uint64(p[off])
		off++
	} else if utg, off = uvarintAt(p, off); off < 0 {
		return it.fail("target")
	}
	if off < len(p) && p[off] < 0x80 {
		kind = uint64(p[off])
		off++
	} else if kind, off = uvarintAt(p, off); off < 0 {
		return it.fail("kind")
	}
	if off < len(p) && p[off] < 0x80 {
		gap = uint64(p[off])
		off++
	} else if gap, off = uvarintAt(p, off); off < 0 {
		return it.fail("gap")
	}

unpacked:
	if kind >= numKinds {
		it.err = fmt.Errorf("%w: record %d kind %d", ErrBadFormat, it.i, kind)
		return Record{}, false
	}
	if gap == 0 || gap > 1<<32-1 {
		it.err = fmt.Errorf("%w: record %d gap %d", ErrBadFormat, it.i, gap)
		return Record{}, false
	}
	it.off = off

	pcd := int64(upc>>1) ^ -int64(upc&1)
	tgd := int64(utg>>1) ^ -int64(utg&1)
	r := Record{
		PC:     it.prevPC + uint32(pcd*4),
		Target: it.prevTgt + uint32(tgd*4),
		Kind:   Kind(kind),
		Gap:    uint32(gap),
	}
	it.prevPC, it.prevTgt = r.PC, r.Target
	it.i++
	if it.i == it.n && off != len(p) {
		// Trailing bytes invalidate the chunk as a whole; the last record
		// still decodes (and is returned), Err carries the verdict.
		it.err = fmt.Errorf("%w: %d trailing bytes in chunk", ErrBadFormat, len(p)-off)
	}
	return r, true
}

// NextBatch decodes up to len(dst) records into dst and returns how many it
// wrote. It is Next amortized: the decode state lives in locals for the whole
// batch and is written back once, so per-record overhead is just the field
// decodes. A short return means end of chunk or a malformed record — check
// Err, then stop. Mixing NextBatch and Next on one iterator is fine; they
// share the same cursor.
func (it *RecordIter) NextBatch(dst []Record) int {
	if it.err != nil {
		return 0
	}
	p, off := it.p, it.off
	prevPC, prevTgt := it.prevPC, it.prevTgt
	k := 0
	if rem := it.n - it.i; rem < len(dst) {
		dst = dst[:rem]
	}
	for k < len(dst) {
		start := off
		var upc, utg, kind, gap uint64
		// Same packed fast paths as Next (see there for the shapes), plus a
		// pair path: two adjacent all-single-byte records fit one 8-byte
		// load, so a clean mask test commits both at once.
		if off+8 <= len(p) {
			u := binary.LittleEndian.Uint64(p[off:])
			if u&0x8080808080808080 == 0 && len(dst)-k >= 2 {
				k1, g1 := u>>16&0x7f, u>>24&0x7f
				k2, g2 := u>>48&0x7f, u>>56
				if k1 < numKinds && g1 != 0 && k2 < numKinds && g2 != 0 {
					upc, utg = u&0x7f, u>>8&0x7f
					prevPC += uint32(int32(upc>>1)^-int32(upc&1)) * 4
					prevTgt += uint32(int32(utg>>1)^-int32(utg&1)) * 4
					dst[k] = Record{PC: prevPC, Target: prevTgt, Kind: Kind(k1), Gap: uint32(g1)}
					upc, utg = u>>32&0x7f, u>>40&0x7f
					prevPC += uint32(int32(upc>>1)^-int32(upc&1)) * 4
					prevTgt += uint32(int32(utg>>1)^-int32(utg&1)) * 4
					dst[k+1] = Record{PC: prevPC, Target: prevTgt, Kind: Kind(k2), Gap: uint32(g2)}
					off += 8
					k += 2
					continue
				}
			}
			if u&0x80808080 == 0 {
				upc = u & 0x7f
				utg = u >> 8 & 0x7f
				kind = u >> 16 & 0x7f
				gap = u >> 24 & 0x7f
				off += 4
				if kind >= numKinds || gap == 0 {
					off = start
					goto bail
				}
				goto commit
			}
			if u&0x0000808080808080 == 0x0000000000808000 {
				upc = u & 0x7f
				utg = u>>8&0x7f | u>>9&(0x7f<<7) | u>>10&(0x7f<<14)
				kind = u >> 32 & 0x7f
				gap = u >> 40 & 0x7f
				off += 6
				if kind >= numKinds || gap == 0 {
					off = start
					goto bail
				}
				goto commit
			}
		}
		if off < len(p) && p[off] < 0x80 {
			upc = uint64(p[off])
			off++
		} else if upc, off = uvarintAt(p, off); off < 0 {
			off = start
			goto bail
		}
		if off < len(p) && p[off] < 0x80 {
			utg = uint64(p[off])
			off++
		} else if utg, off = uvarintAt(p, off); off < 0 {
			off = start
			goto bail
		}
		if off < len(p) && p[off] < 0x80 {
			kind = uint64(p[off])
			off++
		} else if kind, off = uvarintAt(p, off); off < 0 {
			off = start
			goto bail
		}
		if off < len(p) && p[off] < 0x80 {
			gap = uint64(p[off])
			off++
		} else if gap, off = uvarintAt(p, off); off < 0 {
			off = start
			goto bail
		}
		if kind >= numKinds || gap-1 >= 1<<32-1 {
			off = start
			goto bail
		}
	commit:
		pcd := int64(upc>>1) ^ -int64(upc&1)
		tgd := int64(utg>>1) ^ -int64(utg&1)
		prevPC += uint32(pcd * 4)
		prevTgt += uint32(tgd * 4)
		dst[k] = Record{PC: prevPC, Target: prevTgt, Kind: Kind(kind), Gap: uint32(gap)}
		k++
	}
	it.p, it.off = p, off
	it.prevPC, it.prevTgt = prevPC, prevTgt
	it.i += k
	if it.i == it.n && off != len(p) {
		it.err = fmt.Errorf("%w: %d trailing bytes in chunk", ErrBadFormat, len(p)-off)
	}
	return k

bail:
	// Re-decode the offending record through Next so the error text (field,
	// index, cause) is identical to the one-at-a-time path's.
	it.off = off
	it.prevPC, it.prevTgt = prevPC, prevTgt
	it.i += k
	it.Next()
	return k
}

// fail records a truncation error for the named field of the current record.
func (it *RecordIter) fail(field string) (Record, bool) {
	it.err = fmt.Errorf("trace: record %d %s: %w", it.i, field, io.ErrUnexpectedEOF)
	return Record{}, false
}

// Err returns the first malformation found: a truncated or invalid record,
// or trailing bytes after the declared count. It is nil after a clean
// iteration of exactly Len records.
func (it *RecordIter) Err() error { return it.err }

// PeekFirstPC returns the PC of the chunk's first record without validating
// the rest of the payload, and ok=false for an empty or unparsable chunk. It
// is the shard/placement key peek: pinning wants one field, not a decode.
func PeekFirstPC(payload []byte) (pc uint32, ok bool) {
	it := RecordIter{p: payload}
	n, ok := it.uvarint()
	if !ok || n == 0 {
		return 0, false
	}
	pcd, ok := it.varint()
	if !ok {
		return 0, false
	}
	return uint32(pcd * 4), true
}
