package trace

import (
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// iterAll drains a RecordIter one record at a time.
func iterAll(payload []byte, max int) (Trace, error) {
	it, err := NewRecordIter(payload, max)
	if err != nil {
		return nil, err
	}
	var out Trace
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, it.Err()
}

func TestRecordIterMatchesDecodeRecords(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 256, 4096} {
		payload := AppendRecords(nil, genTrace(n))
		want, derr := DecodeRecords(payload, 0)
		if derr != nil {
			t.Fatalf("n=%d: DecodeRecords: %v", n, derr)
		}
		got, ierr := iterAll(payload, 0)
		if ierr != nil {
			t.Fatalf("n=%d: iterator: %v", n, ierr)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: iterator %d records, DecodeRecords %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d record %d: %+v != %+v", n, i, got[i], want[i])
			}
		}
	}
}

// TestRecordIterNextBatchMatchesNext drives the same payload through Next and
// through NextBatch with deliberately awkward batch sizes, including ones
// that split the paired fast path.
func TestRecordIterNextBatchMatchesNext(t *testing.T) {
	payload := AppendRecords(nil, genTrace(1000))
	want, err := iterAll(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 3, 5, 64, 1000, 5000} {
		it, err := NewRecordIter(payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		var got Trace
		dst := make([]Record, size)
		for {
			n := it.NextBatch(dst)
			if n == 0 {
				break
			}
			got = append(got, dst[:n]...)
		}
		if err := it.Err(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d record %d: %+v != %+v", size, i, got[i], want[i])
			}
		}
	}
}

// TestRecordIterTypedErrors pins the error contract shared by the iterator
// and DecodeRecords: truncations report io.ErrUnexpectedEOF, structural
// violations report ErrBadFormat — and both decoders agree on every case.
func TestRecordIterTypedErrors(t *testing.T) {
	valid := AppendRecords(nil, genTrace(2))
	oversize := binary.AppendUvarint(nil, 5000)
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"truncated count", []byte{0x80}, io.ErrUnexpectedEOF},
		{"oversize count", oversize, ErrBadFormat},
		{"truncated record", valid[:len(valid)-1], io.ErrUnexpectedEOF},
		{"bad kind", []byte{1, 0, 0, numKinds, 1}, ErrBadFormat},
		{"zero gap", []byte{1, 0, 0, 0, 0}, ErrBadFormat},
		{"trailing bytes", append(append([]byte{}, valid...), 0xff), ErrBadFormat},
		{"trailing after empty chunk", []byte{0, 0xff}, ErrBadFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ierr := iterAll(tc.payload, 4096)
			if !errors.Is(ierr, tc.want) {
				t.Fatalf("iterator error %v, want %v", ierr, tc.want)
			}
			_, derr := DecodeRecords(tc.payload, 4096)
			if !errors.Is(derr, tc.want) {
				t.Fatalf("DecodeRecords error %v, want %v", derr, tc.want)
			}
		})
	}
}

// TestRecordIterTruncationEveryPrefix cross-checks the two decoders on every
// prefix of a real payload: same accept/reject verdict, same error type.
func TestRecordIterTruncationEveryPrefix(t *testing.T) {
	payload := AppendRecords(nil, genTrace(64))
	for cut := 0; cut < len(payload); cut++ {
		prefix := payload[:cut]
		_, ierr := iterAll(prefix, 0)
		_, derr := DecodeRecords(prefix, 0)
		if (ierr == nil) != (derr == nil) {
			t.Fatalf("cut %d: iterator %v, DecodeRecords %v", cut, ierr, derr)
		}
		if ierr != nil {
			if errors.Is(ierr, ErrBadFormat) != errors.Is(derr, ErrBadFormat) ||
				errors.Is(ierr, io.ErrUnexpectedEOF) != errors.Is(derr, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: error types disagree: %v vs %v", cut, ierr, derr)
			}
		}
	}
}

func TestPeekFirstPC(t *testing.T) {
	tr := genTrace(8)
	payload := AppendRecords(nil, tr)
	pc, ok := PeekFirstPC(payload)
	if !ok || pc != tr[0].PC {
		t.Fatalf("PeekFirstPC = (%#x, %v), want (%#x, true)", pc, ok, tr[0].PC)
	}
	if _, ok := PeekFirstPC(AppendRecords(nil, nil)); ok {
		t.Fatal("PeekFirstPC accepted an empty chunk")
	}
	if _, ok := PeekFirstPC(nil); ok {
		t.Fatal("PeekFirstPC accepted an empty payload")
	}
	if _, ok := PeekFirstPC([]byte{0x01, 0x80}); ok {
		t.Fatal("PeekFirstPC accepted a truncated first record")
	}
}
