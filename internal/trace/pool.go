package trace

import (
	"sync"
	"sync/atomic"
)

// Frame-buffer pool
//
// The wire hot path (internal/serve, internal/cluster) turns over one payload
// buffer per frame at rates where per-frame allocation is the dominant cost —
// the same observation that makes DPDK-style dataplanes allocate packet
// buffers from a mempool instead of the heap. BufferPool is that mempool: a
// small ladder of size classes, each backed by a sync.Pool, handing out
// refcounted PooledBufs.
//
// Ownership rules (the "release contract"):
//
//   - Get returns a buffer with one reference; whoever holds the last
//     reference must Release it or the buffer is merely garbage-collected
//     instead of reused (correct, but slow).
//   - Retain adds a reference before handing the buffer to another holder
//     (a journal, a writer queue); each holder Releases independently.
//   - After the final Release the bytes must not be touched. Bytes and
//     Release check the reference count and panic on use-after-release and
//     double-release — cheap (one atomic load) and loud, instead of the
//     silent cross-session corruption a recycled buffer would cause.
//
// Requests above the largest class are served by a plain allocation that is
// never pooled, so a hostile length can not pin a huge buffer in the pool —
// the capacity ladder is the cap.

// poolClasses is the capacity ladder. Acks and control frames land in the
// smallest class; a default records frame (8192 records × ≤14 bytes) fits in
// the 128 KiB class; the largest class matches the serve layer's default
// 1 MiB frame payload limit.
var poolClasses = [...]int{512, 4 << 10, 32 << 10, 128 << 10, 1 << 20}

// PooledBuf is one refcounted buffer borrowed from a BufferPool. The zero
// reference state is "released"; all methods are nil-safe so optional
// ownership plumbs through without branches at the call sites.
type PooledBuf struct {
	data  []byte
	pool  *BufferPool
	class int8 // index into poolClasses; -1 for oversize one-shot buffers
	refs  atomic.Int32
}

// Bytes returns the buffer's backing slice (capacity of its class, length as
// requested from Get). It panics if the buffer has been released.
func (b *PooledBuf) Bytes() []byte {
	if b == nil {
		return nil
	}
	if b.refs.Load() <= 0 {
		panic("trace: pooled buffer used after release")
	}
	return b.data
}

// Retain adds a reference: the buffer now needs one more Release before it
// returns to the pool. It panics if the buffer has already been released.
func (b *PooledBuf) Retain() {
	if b == nil {
		return
	}
	if b.refs.Add(1) <= 1 {
		panic("trace: pooled buffer retained after release")
	}
}

// Release drops one reference, returning the buffer to its pool when the last
// holder lets go. It panics on double-release.
func (b *PooledBuf) Release() {
	if b == nil {
		return
	}
	n := b.refs.Add(-1)
	if n < 0 {
		panic("trace: pooled buffer double release")
	}
	if n == 0 && b.class >= 0 {
		b.pool.put(b)
	}
}

// BufferPool is a size-classed pool of frame payload buffers. The zero value
// is not usable; create with NewBufferPool. A nil *BufferPool is a valid
// "pooling disabled" value: Get then falls back to plain allocation.
type BufferPool struct {
	classes [len(poolClasses)]sync.Pool
	hits    atomic.Uint64
	misses  atomic.Uint64

	// onHit/onMiss mirror the counters into an external stats sink (the
	// serve layer's telemetry registry). Nil is no-op.
	onHit  func()
	onMiss func()
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// OnStats installs per-Get observers: hit fires when Get reuses a pooled
// buffer, miss when it allocates (first use of a class, pool drained by GC,
// or an oversize request). Either may be nil.
func (p *BufferPool) OnStats(hit, miss func()) { p.onHit, p.onMiss = hit, miss }

// Stats returns the cumulative hit/miss counts.
func (p *BufferPool) Stats() (hits, misses uint64) {
	if p == nil {
		return 0, 0
	}
	return p.hits.Load(), p.misses.Load()
}

// classFor returns the smallest class index whose capacity holds n, or -1
// when n exceeds the ladder.
func classFor(n int) int {
	for c, size := range poolClasses {
		if n <= size {
			return c
		}
	}
	return -1
}

// Get returns a buffer whose Bytes() has length n, with one reference held
// by the caller. On a nil pool, or when n exceeds the largest class, the
// buffer is freshly allocated and will not be pooled on Release.
func (p *BufferPool) Get(n int) *PooledBuf {
	if p == nil {
		b := &PooledBuf{data: make([]byte, n), class: -1}
		b.refs.Store(1)
		return b
	}
	c := classFor(n)
	if c < 0 {
		p.misses.Add(1)
		if p.onMiss != nil {
			p.onMiss()
		}
		b := &PooledBuf{data: make([]byte, n), pool: p, class: -1}
		b.refs.Store(1)
		return b
	}
	if v := p.classes[c].Get(); v != nil {
		b := v.(*PooledBuf)
		b.data = b.data[:n]
		b.refs.Store(1)
		p.hits.Add(1)
		if p.onHit != nil {
			p.onHit()
		}
		return b
	}
	p.misses.Add(1)
	if p.onMiss != nil {
		p.onMiss()
	}
	b := &PooledBuf{data: make([]byte, n, poolClasses[c]), pool: p, class: int8(c)}
	b.refs.Store(1)
	return b
}

// put returns a fully released buffer to its class.
func (p *BufferPool) put(b *PooledBuf) {
	b.data = b.data[:cap(b.data)]
	p.classes[b.class].Put(b)
}
