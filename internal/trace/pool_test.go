package trace

import (
	"bytes"
	"io"
	"testing"
)

// mustPanic asserts that fn panics with the given message.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %q", want)
		}
		if s, ok := r.(string); !ok || s != want {
			t.Fatalf("panic %v, want %q", r, want)
		}
	}()
	fn()
}

func TestBufferPoolClassLadder(t *testing.T) {
	p := NewBufferPool()
	for _, n := range []int{0, 1, 512, 513, 4 << 10, 32 << 10, 128 << 10, 1 << 20} {
		b := p.Get(n)
		if got := len(b.Bytes()); got != n {
			t.Fatalf("Get(%d) length %d", n, got)
		}
		c := classFor(n)
		if c < 0 {
			t.Fatalf("Get(%d) should be a pooled class", n)
		}
		if got := cap(b.Bytes()); got != poolClasses[c] {
			t.Fatalf("Get(%d) capacity %d, want class capacity %d", n, got, poolClasses[c])
		}
		b.Release()
	}
}

func TestBufferPoolRecyclesAndCountsStats(t *testing.T) {
	p := NewBufferPool()
	var obsHits, obsMisses int
	p.OnStats(func() { obsHits++ }, func() { obsMisses++ })

	b := p.Get(100)
	b.Release()
	b2 := p.Get(200) // same 512 class; single-goroutine sync.Pool reuses it
	if &b2.Bytes()[0] != &b.data[0] {
		t.Log("pool did not recycle (GC ran mid-test); stats still must add up")
	}
	b2.Release()

	hits, misses := p.Stats()
	if hits+misses != 2 {
		t.Fatalf("hits %d + misses %d != 2 gets", hits, misses)
	}
	if misses < 1 {
		t.Fatalf("first Get of a class must miss (hits %d, misses %d)", hits, misses)
	}
	if int(hits) != obsHits || int(misses) != obsMisses {
		t.Fatalf("OnStats observers (%d, %d) disagree with Stats (%d, %d)",
			obsHits, obsMisses, hits, misses)
	}
}

func TestBufferPoolOversizeNeverPooled(t *testing.T) {
	p := NewBufferPool()
	huge := poolClasses[len(poolClasses)-1] + 1
	b := p.Get(huge)
	if b.class != -1 {
		t.Fatalf("oversize buffer got class %d", b.class)
	}
	if len(b.Bytes()) != huge {
		t.Fatalf("oversize length %d, want %d", len(b.Bytes()), huge)
	}
	b.Release() // must not enter the pool (and must not panic)
	_, misses := p.Stats()
	if misses != 1 {
		t.Fatalf("oversize Get recorded %d misses, want 1", misses)
	}
}

func TestNilPoolFallsBackToAllocation(t *testing.T) {
	var p *BufferPool
	b := p.Get(64)
	if len(b.Bytes()) != 64 {
		t.Fatalf("nil-pool Get length %d", len(b.Bytes()))
	}
	b.Release()
	if hits, misses := p.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("nil-pool stats (%d, %d)", hits, misses)
	}
}

func TestNilPooledBufIsSafe(t *testing.T) {
	var b *PooledBuf
	if b.Bytes() != nil {
		t.Fatal("nil buffer returned bytes")
	}
	b.Retain()
	b.Release() // all no-ops
}

func TestPooledBufDoubleReleasePanics(t *testing.T) {
	b := NewBufferPool().Get(8)
	b.Release()
	mustPanic(t, "trace: pooled buffer double release", b.Release)
}

func TestPooledBufUseAfterReleasePanics(t *testing.T) {
	b := NewBufferPool().Get(8)
	b.Release()
	mustPanic(t, "trace: pooled buffer used after release", func() { b.Bytes() })
}

func TestPooledBufRetainAfterReleasePanics(t *testing.T) {
	b := NewBufferPool().Get(8)
	b.Release()
	mustPanic(t, "trace: pooled buffer retained after release", b.Retain)
}

func TestPooledBufReleaseAfterRetain(t *testing.T) {
	b := NewBufferPool().Get(8)
	b.Retain()
	b.Release() // drops the retain; one reference left
	if got := len(b.Bytes()); got != 8 {
		t.Fatalf("buffer dead after balanced retain/release (len %d)", got)
	}
	b.Release()
	mustPanic(t, "trace: pooled buffer used after release", func() { b.Bytes() })
}

func TestFrameReleaseIsIdempotentAndCopyDetaches(t *testing.T) {
	var stream bytes.Buffer
	fw := NewFrameWriter(&stream)
	fw.WriteFrame(17, []byte("payload"))
	fw.Flush()

	fr := NewPooledFrameReader(bytes.NewReader(stream.Bytes()), 0, NewBufferPool())
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	cp := f.Copy()
	f.Release()
	f.Release() // second release is a no-op: buf was cleared
	if string(cp) != "payload" {
		t.Fatalf("copy %q after release", cp)
	}

	// Retain keeps the payload alive across another holder's release.
	fr = NewPooledFrameReader(bytes.NewReader(stream.Bytes()), 0, NewBufferPool())
	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	f.Retain()
	buf := f.Buffer()
	f.Release()
	if string(buf.Bytes()[:7]) == "" {
		t.Fatal("unreachable")
	}
	buf.Release()
}

// repeatReader replays one byte sequence forever, so a frame reader can be
// driven in steady state without the test allocating per read.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestPooledFrameReadZeroAllocs pins the pooled read path's steady state:
// once the pool is warm, reading and releasing frames allocates nothing —
// the property the serve and cluster hot paths are built on.
func TestPooledFrameReadZeroAllocs(t *testing.T) {
	payload := AppendRecords(nil, genTrace(2048))
	var one bytes.Buffer
	fw := NewFrameWriter(&one)
	fw.WriteFrame(17, payload)
	fw.Flush()

	fr := NewPooledFrameReader(&repeatReader{data: one.Bytes()}, 0, NewBufferPool())
	read := func() {
		f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	read() // warm the pool and the reader's scratch
	if avg := testing.AllocsPerRun(200, read); avg != 0 {
		t.Fatalf("pooled frame read allocates %.1f times per frame, want 0", avg)
	}
}

// TestVectoredAckWriteZeroAllocs pins the vectored write path's steady
// state: batching small (inlined) and large (spliced, pooled) frames and
// flushing them costs no allocations per batch.
func TestVectoredAckWriteZeroAllocs(t *testing.T) {
	pool := NewBufferPool()
	big := AppendRecords(nil, genTrace(512)) // > inlineLimit, gets spliced
	ack1, ack2 := []byte{1, 2, 3}, []byte{4, 5, 6}
	var fb FrameBatcher
	batch := func() {
		fb.Add(0x21, ack1, nil) // ack-sized, inlined
		fb.Add(0x21, ack2, nil)
		pb := pool.Get(len(big))
		copy(pb.Bytes(), big)
		fb.Add(0x22, pb.Bytes(), pb) // spliced; batcher releases it
		if err := fb.Flush(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	batch() // warm the arena, vecs, and pool
	if avg := testing.AllocsPerRun(200, batch); avg != 0 {
		t.Fatalf("vectored frame write allocates %.1f times per batch, want 0", avg)
	}
}
