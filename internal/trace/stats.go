package trace

import (
	"fmt"
	"sort"
)

// Summary holds the benchmark-characteristic statistics of Tables 1–2:
// dynamic branch counts, instruction and conditional-branch densities, the
// virtual-call fraction, and the active-branch-site coverage counts (how many
// sites account for 90/95/99/100% of dynamic indirect branches).
type Summary struct {
	// Indirect is the number of dynamic indirect branches (excluding
	// returns and conditionals).
	Indirect int
	// Returns and Conds count the non-indirect records.
	Returns int
	Conds   int
	// Instructions is the total instruction count covered by the trace.
	Instructions uint64
	// InstrPerIndirect is Instructions / Indirect ("instr. / indirect").
	InstrPerIndirect float64
	// CondPerIndirect is Conds / Indirect ("cond. / indirect").
	CondPerIndirect float64
	// VCallFraction is the fraction of indirect branches that are virtual
	// function calls ("virt. func." in Table 1).
	VCallFraction float64
	// Sites is the number of distinct indirect branch sites.
	Sites int
	// Coverage[q] is the minimum number of sites whose dynamic execution
	// counts sum to at least q percent of all indirect branches, for
	// q in CoverageQuantiles.
	Coverage map[int]int
	// MaxTargetsPerSite is the largest number of distinct targets
	// observed at any single site (the arity of the benchmark's most
	// polymorphic branch).
	MaxTargetsPerSite int
}

// CoverageQuantiles are the "active branch sites" columns of Tables 1–2.
var CoverageQuantiles = []int{90, 95, 99, 100}

// Summarize computes the Summary of a trace.
func Summarize(t Trace) Summary {
	s := Summary{Coverage: make(map[int]int, len(CoverageQuantiles))}
	siteCounts := make(map[uint32]int)
	siteTargets := make(map[uint32]map[uint32]struct{})
	vcalls := 0
	for _, r := range t {
		s.Instructions += uint64(r.Gap)
		switch {
		case r.Kind == Return:
			s.Returns++
		case r.Kind == Cond:
			s.Conds++
		case r.Kind.Indirect():
			s.Indirect++
			siteCounts[r.PC]++
			ts := siteTargets[r.PC]
			if ts == nil {
				ts = make(map[uint32]struct{})
				siteTargets[r.PC] = ts
			}
			ts[r.Target] = struct{}{}
			if r.Kind == VirtualCall {
				vcalls++
			}
		}
	}
	s.Sites = len(siteCounts)
	for _, ts := range siteTargets {
		if len(ts) > s.MaxTargetsPerSite {
			s.MaxTargetsPerSite = len(ts)
		}
	}
	if s.Indirect > 0 {
		s.InstrPerIndirect = float64(s.Instructions) / float64(s.Indirect)
		s.CondPerIndirect = float64(s.Conds) / float64(s.Indirect)
		s.VCallFraction = float64(vcalls) / float64(s.Indirect)
	}
	counts := make([]int, 0, len(siteCounts))
	for _, c := range siteCounts {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	for _, q := range CoverageQuantiles {
		s.Coverage[q] = sitesForCoverage(counts, s.Indirect, q)
	}
	return s
}

// sitesForCoverage returns the number of leading (descending) counts needed
// to reach q percent of total.
func sitesForCoverage(desc []int, total, q int) int {
	if total == 0 {
		return 0
	}
	need := (total*q + 99) / 100 // ceil(total * q / 100)
	sum := 0
	for i, c := range desc {
		sum += c
		if sum >= need {
			return i + 1
		}
	}
	return len(desc)
}

// String renders the summary as a single Tables 1–2 style row.
func (s Summary) String() string {
	return fmt.Sprintf("indirect=%d instr/ind=%.0f cond/ind=%.1f vcall=%.0f%% sites(90/95/99/100%%)=%d/%d/%d/%d",
		s.Indirect, s.InstrPerIndirect, s.CondPerIndirect, 100*s.VCallFraction,
		s.Coverage[90], s.Coverage[95], s.Coverage[99], s.Coverage[100])
}
