// Package trace defines the indirect-branch trace substrate used throughout
// the reproduction. The paper obtained traces of all indirect branches from
// the shade instruction-level simulator; here a trace is a sequence of
// Records produced by the synthetic workload generators (internal/workload)
// or the bytecode VM (internal/vm), with a compact binary on-disk format.
package trace

import "fmt"

// Kind classifies a traced control transfer. Predictors in this study only
// consume indirect branches; Return records exist so the return address
// stack premise of §2 can be verified, and Cond records exist for the §3.3
// variation that includes conditional-branch targets in the history.
type Kind uint8

const (
	// IndirectCall is a call through a function pointer.
	IndirectCall Kind = iota
	// IndirectJump is a computed jump (e.g. threaded interpreter dispatch).
	IndirectJump
	// VirtualCall is a virtual function call (vtable dispatch).
	VirtualCall
	// SwitchJump is the jump-table branch of a switch statement.
	SwitchJump
	// Return is a procedure return (excluded from prediction; handled by
	// a return address stack).
	Return
	// Cond is a taken conditional branch (recorded only when a workload
	// is configured to emit them).
	Cond
	// DirectCall is a direct (statically-bound) call. It is not an
	// indirect branch; it exists so return address stacks see the full
	// call structure.
	DirectCall

	numKinds = 7
)

var kindNames = [numKinds]string{
	"icall", "ijump", "vcall", "switch", "return", "cond", "call",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Indirect reports whether records of this kind are indirect branches in the
// paper's sense: predicted by the indirect-branch predictor and counted in
// misprediction rates. Returns and conditional branches are not.
func (k Kind) Indirect() bool {
	switch k {
	case IndirectCall, IndirectJump, VirtualCall, SwitchJump:
		return true
	}
	return false
}

// Record is one traced control transfer.
type Record struct {
	// PC is the word-aligned address of the branch instruction (the
	// branch site).
	PC uint32
	// Target is the word-aligned address the branch transferred to. For
	// Return records it is the actual return address.
	Target uint32
	// Kind classifies the transfer.
	Kind Kind
	// Gap is the number of instructions executed since the previous
	// record (inclusive of this branch); it feeds the instructions-per-
	// indirect-branch statistic of Tables 1–2.
	Gap uint32
}

// Trace is an in-memory branch trace.
type Trace []Record

// Indirect returns the subsequence of indirect branch records (the input to
// all predictors), preserving order.
func (t Trace) Indirect() Trace {
	out := make(Trace, 0, len(t))
	for _, r := range t {
		if r.Kind.Indirect() {
			out = append(out, r)
		}
	}
	return out
}

// CountKind returns the number of records of kind k.
func (t Trace) CountKind(k Kind) int {
	n := 0
	for _, r := range t {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// Instructions returns the total instruction count covered by the trace.
func (t Trace) Instructions() uint64 {
	var n uint64
	for _, r := range t {
		n += uint64(r.Gap)
	}
	return n
}

// Validate checks structural invariants: word-aligned addresses, known
// kinds, and non-zero gaps. It returns the first violation found.
func (t Trace) Validate() error {
	for i, r := range t {
		if r.PC&3 != 0 {
			return fmt.Errorf("trace: record %d: PC %#x not word-aligned", i, r.PC)
		}
		if r.Target&3 != 0 {
			return fmt.Errorf("trace: record %d: target %#x not word-aligned", i, r.Target)
		}
		if int(r.Kind) >= numKinds {
			return fmt.Errorf("trace: record %d: unknown kind %d", i, r.Kind)
		}
		if r.Gap == 0 {
			return fmt.Errorf("trace: record %d: zero instruction gap", i)
		}
	}
	return nil
}
