package trace

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func sample() Trace {
	return Trace{
		{PC: 0x1000, Target: 0x2000, Kind: VirtualCall, Gap: 40},
		{PC: 0x1000, Target: 0x2400, Kind: VirtualCall, Gap: 45},
		{PC: 0x1010, Target: 0x3000, Kind: IndirectCall, Gap: 12},
		{PC: 0x1020, Target: 0x1004, Kind: Return, Gap: 8},
		{PC: 0x1030, Target: 0x1050, Kind: Cond, Gap: 4},
		{PC: 0x1040, Target: 0x4000, Kind: SwitchJump, Gap: 90},
		{PC: 0x1044, Target: 0x5000, Kind: IndirectJump, Gap: 3},
	}
}

func TestKindIndirect(t *testing.T) {
	want := map[Kind]bool{
		IndirectCall: true, IndirectJump: true, VirtualCall: true,
		SwitchJump: true, Return: false, Cond: false,
	}
	for k, w := range want {
		if k.Indirect() != w {
			t.Errorf("%v.Indirect() = %v, want %v", k, k.Indirect(), w)
		}
	}
}

func TestKindString(t *testing.T) {
	if IndirectJump.String() != "ijump" || Return.String() != "return" {
		t.Errorf("unexpected kind names: %v %v", IndirectJump, Return)
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range kind: %q", got)
	}
}

func TestIndirectFilter(t *testing.T) {
	ind := sample().Indirect()
	if len(ind) != 5 {
		t.Fatalf("Indirect() kept %d records, want 5", len(ind))
	}
	for _, r := range ind {
		if !r.Kind.Indirect() {
			t.Errorf("non-indirect record %v survived filter", r.Kind)
		}
	}
}

func TestCountsAndInstructions(t *testing.T) {
	tr := sample()
	if got := tr.CountKind(VirtualCall); got != 2 {
		t.Errorf("CountKind(VirtualCall) = %d, want 2", got)
	}
	if got := tr.Instructions(); got != 40+45+12+8+4+90+3 {
		t.Errorf("Instructions() = %d", got)
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []Trace{
		{{PC: 0x1001, Target: 0x2000, Kind: IndirectCall, Gap: 1}},
		{{PC: 0x1000, Target: 0x2002, Kind: IndirectCall, Gap: 1}},
		{{PC: 0x1000, Target: 0x2000, Kind: Kind(42), Gap: 1}},
		{{PC: 0x1000, Target: 0x2000, Kind: IndirectCall, Gap: 0}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip length %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], tr[i])
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	tr := make(Trace, 5000)
	for i := range tr {
		tr[i] = Record{
			PC:     rng.Uint32() &^ 3,
			Target: rng.Uint32() &^ 3,
			Kind:   Kind(rng.IntN(numKinds)),
			Gap:    1 + rng.Uint32N(1000),
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], tr[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("IBPT"),             // truncated after magic
		[]byte("IBPT\x02"),         // bad version
		[]byte("IBPT\x01\x05"),     // count 5, no records
		[]byte("IBPT\x01\x01\x00"), // truncated record
	}
	for i, b := range cases {
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestWriteCompactness(t *testing.T) {
	// A tight loop trace should encode in only a few bytes per record.
	tr := make(Trace, 10000)
	for i := range tr {
		tr[i] = Record{PC: 0x1000, Target: 0x2000 + uint32(i%4)*4, Kind: IndirectJump, Gap: 10}
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / float64(len(tr)); perRec > 6 {
		t.Errorf("loop trace encodes at %.1f bytes/record, want <= 6", perRec)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Indirect != 5 || s.Returns != 1 || s.Conds != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Sites != 4 {
		t.Errorf("Sites = %d, want 4", s.Sites)
	}
	if s.VCallFraction != 2.0/5.0 {
		t.Errorf("VCallFraction = %v", s.VCallFraction)
	}
	if s.MaxTargetsPerSite != 2 {
		t.Errorf("MaxTargetsPerSite = %d, want 2", s.MaxTargetsPerSite)
	}
	// 5 indirect branches at 4 sites with counts 2,1,1,1: 90% needs ceil(4.5)=5
	// branches -> 4 sites... counts sorted 2,1,1,1; cumulative 2,3,4,5.
	if got := s.Coverage[90]; got != 4 {
		t.Errorf("Coverage[90] = %d, want 4", got)
	}
	if got := s.Coverage[100]; got != 4 {
		t.Errorf("Coverage[100] = %d, want 4", got)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeSkewedCoverage(t *testing.T) {
	// One dominant site plus a long tail: 90% coverage should need far
	// fewer sites than 100%.
	tr := make(Trace, 0, 1100)
	for i := 0; i < 1000; i++ {
		tr = append(tr, Record{PC: 0x1000, Target: 0x2000, Kind: IndirectJump, Gap: 5})
	}
	for i := 0; i < 100; i++ {
		tr = append(tr, Record{PC: 0x2000 + uint32(i)*4, Target: 0x3000, Kind: IndirectCall, Gap: 5})
	}
	s := Summarize(tr)
	if s.Coverage[90] != 1 {
		t.Errorf("Coverage[90] = %d, want 1", s.Coverage[90])
	}
	if s.Coverage[100] != 101 {
		t.Errorf("Coverage[100] = %d, want 101", s.Coverage[100])
	}
	if s.Coverage[95]+1 > s.Coverage[99] && s.Coverage[95] != s.Coverage[99] {
		t.Errorf("coverage not monotone: %v", s.Coverage)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Indirect != 0 || s.InstrPerIndirect != 0 || s.Coverage[90] != 0 {
		t.Errorf("empty trace summary: %+v", s)
	}
}

func TestSitesForCoverageProperty(t *testing.T) {
	// The returned prefix really covers >= q percent, and the prefix one
	// shorter does not.
	f := func(raw []uint16, qi uint8) bool {
		counts := make([]int, 0, len(raw))
		total := 0
		for _, v := range raw {
			c := int(v%100) + 1
			counts = append(counts, c)
			total += c
		}
		if total == 0 {
			return true
		}
		for i := 1; i < len(counts); i++ { // insertion sort descending
			for j := i; j > 0 && counts[j] > counts[j-1]; j-- {
				counts[j], counts[j-1] = counts[j-1], counts[j]
			}
		}
		q := int(qi%100) + 1
		n := sitesForCoverage(counts, total, q)
		sum := 0
		for _, c := range counts[:n] {
			sum += c
		}
		if sum*100 < total*q {
			return false
		}
		if n > 1 {
			if (sum-counts[n-1])*100 >= total*q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Dump(&buf, sample(), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("Dump wrote %d lines, want 3", n)
	}
	if !strings.Contains(out, "vcall") {
		t.Errorf("Dump output missing kind name:\n%s", out)
	}
	buf.Reset()
	if err := Dump(&buf, sample(), 0); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(sample()) {
		t.Errorf("Dump(0) wrote %d lines, want all %d", n, len(sample()))
	}
}
