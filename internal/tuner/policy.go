// Package tuner is the per-session adaptation plane: it closes the
// observe→decide→act loop over a live serve session. The observe side is a
// cheap per-record sketch (a miss-class breakdown in the internal/analysis
// taxonomy — cold/conflict/alias/meta — fed from the core.Attributor hooks,
// plus a fixed-size pattern filter standing in for the event pipeline's
// exact pattern-seen set). The decide side is a policy state machine
// (warmup → observe → escalate/de-escalate with hysteresis and a swap
// budget). The act side is the serve layer's hot swap: rebuild the
// predictor from the escalation target and replay the session's retained
// history so the swap is bit-reproducible (see internal/serve).
//
// Determinism contract: every decision input is a deterministic function of
// the session's record stream — executed/miss counts over fixed-size
// record windows, never wall-clock windows — so a router replaying a
// session's journal onto a surviving backend drives that backend's tuner
// through the identical decisions at the identical frame boundaries. The
// wall-clock sliding window in sessiontrack is surfaced for operators; the
// policy never reads it.
//
// Like telemetry and flight, nil is disabled: a nil *Tuner hands out nil
// *SessionTuners whose methods are all zero-allocation no-ops.
package tuner

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"github.com/oocsb/ibp/internal/cli"
)

// Policy is one session's tuning policy: when to open the decision window,
// how to judge it, and what predictor to escalate to.
type Policy struct {
	// Warmup is the number of post-warmup executed branches consumed before
	// the first decision window opens (the predictor deserves time to train
	// before its miss rate means anything).
	Warmup int
	// Interval is the decision window length in executed branches. Windows
	// are record-counted, not timed: that keeps decisions deterministic
	// under failover replay.
	Interval int
	// EscalateMiss is the windowed miss-rate threshold (fraction, not
	// percent) at or above which a window votes to escalate.
	EscalateMiss float64
	// DeescalateMiss is the windowed miss-rate threshold at or below which
	// a window votes to fall back to the session's original predictor.
	DeescalateMiss float64
	// Hysteresis is how many consecutive windows must vote the same way
	// before the tuner acts.
	Hysteresis int
	// MaxSwaps bounds the number of hot swaps per session (escalations and
	// de-escalations both count), so a session oscillating around a
	// threshold cannot replay its history forever.
	MaxSwaps int
	// MaxColdShare is the Bullseye-style hard-to-predict gate: a window
	// only votes to escalate when at most this fraction of its classified
	// misses are cold. Cold-dominated miss streams are still filling the
	// tables — a bigger predictor would miss those too.
	MaxColdShare float64
	// MaxHistoryBytes caps the retained per-session replay history; a
	// session that outgrows it has tuning disabled (no further swaps)
	// rather than losing the bit-reproducibility guarantee.
	MaxHistoryBytes int
	// Target is the escalation predictor, parsed from the policy spec's
	// target= key (any -pred spec).
	Target cli.PredictorFlags
	// TargetSpec is the -pred spec Target was parsed from.
	TargetSpec string
}

// Default policy values; see ParsePolicy for the spec grammar.
const (
	defWarmup       = 1024
	defInterval     = 512
	defEscalate     = 0.10
	defDeescalate   = 0.02
	defHysteresis   = 2
	defMaxSwaps     = 2
	defMaxColdShare = 0.5
	defMaxHistory   = 64 << 20
	defTarget       = "ittage:8,512,2"
)

// DefaultPolicy returns the built-in policy: observe 1024 executed branches,
// then judge 512-branch windows; two consecutive windows at ≥10% misses
// (unless cold-dominated) escalate to ITTAGE; two windows at ≤2% fall back.
func DefaultPolicy() Policy {
	p := Policy{
		Warmup:          defWarmup,
		Interval:        defInterval,
		EscalateMiss:    defEscalate,
		DeescalateMiss:  defDeescalate,
		Hysteresis:      defHysteresis,
		MaxSwaps:        defMaxSwaps,
		MaxColdShare:    defMaxColdShare,
		MaxHistoryBytes: defMaxHistory,
		TargetSpec:      defTarget,
	}
	p.Target, _ = PredictorFor(defTarget)
	return p
}

// PredictorFor resolves a -pred spec into buildable PredictorFlags with the
// non-pred flags at their Register defaults, verifying construction once so
// a bad target fails at policy-parse time, not at swap time.
func PredictorFor(pred string) (cli.PredictorFlags, error) {
	var f cli.PredictorFlags
	fs := flag.NewFlagSet("tuner", flag.ContinueOnError)
	f.Register(fs)
	f.Pred = pred
	if err := f.Validate(); err != nil {
		return f, err
	}
	if _, err := f.Build(); err != nil {
		return f, err
	}
	return f, nil
}

// ParsePolicy parses a -tunerpolicy spec: semicolon-separated key=value
// pairs overriding the defaults (semicolons, because the target spec itself
// contains commas). Keys:
//
//	warmup=N    executed branches before the first window (default 1024)
//	interval=N  window length in executed branches (default 512)
//	miss=F      escalate at windowed miss rate ≥ F (default 0.10)
//	low=F       de-escalate at windowed miss rate ≤ F (default 0.02)
//	hyst=N      consecutive windows before acting (default 2)
//	swaps=N     per-session swap budget (default 2)
//	coldmax=F   only escalate when cold misses ≤ F of the window (default 0.5)
//	histmax=N   replay-history byte cap per session (default 64 MiB)
//	target=SPEC escalation predictor, any -pred spec (default ittage:8,512,2)
//
// The empty spec is the default policy.
func ParsePolicy(spec string) (Policy, error) {
	p := DefaultPolicy()
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, pair := range strings.Split(spec, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return p, fmt.Errorf("tuner: policy term %q is not key=value", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "warmup":
			p.Warmup, err = parseIntMin(val, 0)
		case "interval":
			p.Interval, err = parseIntMin(val, 1)
		case "miss":
			p.EscalateMiss, err = parseFrac(val)
		case "low":
			p.DeescalateMiss, err = parseFrac(val)
		case "hyst":
			p.Hysteresis, err = parseIntMin(val, 1)
		case "swaps":
			p.MaxSwaps, err = parseIntMin(val, 1)
		case "coldmax":
			p.MaxColdShare, err = parseFrac(val)
		case "histmax":
			p.MaxHistoryBytes, err = parseIntMin(val, 1)
		case "target":
			p.Target, err = PredictorFor(val)
			p.TargetSpec = val
		default:
			return p, fmt.Errorf("tuner: unknown policy key %q (want warmup, interval, miss, low, hyst, swaps, coldmax, histmax, or target)", key)
		}
		if err != nil {
			return p, fmt.Errorf("tuner: policy %s=%q: %w", key, val, err)
		}
	}
	if p.DeescalateMiss >= p.EscalateMiss {
		return p, fmt.Errorf("tuner: policy low=%v must be below miss=%v", p.DeescalateMiss, p.EscalateMiss)
	}
	return p, nil
}

// String renders the policy in the ParsePolicy grammar (canonical order).
func (p Policy) String() string {
	return fmt.Sprintf("warmup=%d;interval=%d;miss=%g;low=%g;hyst=%d;swaps=%d;coldmax=%g;histmax=%d;target=%s",
		p.Warmup, p.Interval, p.EscalateMiss, p.DeescalateMiss,
		p.Hysteresis, p.MaxSwaps, p.MaxColdShare, p.MaxHistoryBytes, p.TargetSpec)
}

func parseIntMin(s string, min int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("not an integer")
	}
	if v < min {
		return 0, fmt.Errorf("must be at least %d", min)
	}
	return v, nil
}

func parseFrac(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("must be a fraction in [0,1]")
	}
	return v, nil
}
