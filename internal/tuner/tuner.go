package tuner

import (
	"sync/atomic"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/telemetry"
)

// Miss classes in the internal/analysis taxonomy, as sketch indices.
const (
	ClassCold = iota
	ClassConflict
	ClassAlias
	ClassMeta
	numClasses
)

// Decision is one act the policy state machine emitted at a frame boundary.
// The serve layer applies it: build Target, replay the session's history,
// swap at the boundary.
type Decision struct {
	// Target is the predictor to swap to.
	Target cli.PredictorFlags
	// Escalate is true for an escalation, false for a fall-back to the
	// session's original predictor.
	Escalate bool
	// Reason is a short operator-facing label ("miss-rate", "forced").
	Reason string
}

// Tuner is the process-level adaptation plane: the default policy, the
// concurrent-tuned-sessions capacity gate, and the tuner_* telemetry.
// nil is disabled: Session returns nil and every method no-ops.
type Tuner struct {
	def         Policy
	maxSessions int64
	tunedNow    atomic.Int64
	m           metrics
}

// Options configures a Tuner.
type Options struct {
	// Policy is the process default, overridable per session via
	// Hello.TunerPolicy.
	Policy Policy
	// MaxSessions caps concurrently tuned sessions (a best-effort capacity
	// guard on replay-history memory, decided at session open; it does not
	// participate in the determinism contract). <= 0 means no cap.
	MaxSessions int
	// Telemetry resolves the tuner_* handles; nil disables them.
	Telemetry *telemetry.Registry
}

// metrics is the tuner_* telemetry surface; handles are nil-safe no-ops
// when telemetry is off.
type metrics struct {
	sessions      *telemetry.Counter // tuner_sessions_total
	rejected      *telemetry.Counter // tuner_sessions_rejected_total
	swaps         *telemetry.Counter // tuner_swaps_total
	escalations   *telemetry.Counter // tuner_escalations_total
	deescalations *telemetry.Counter // tuner_deescalations_total
	swapFailed    *telemetry.Counter // tuner_swap_failed_total
	replayed      *telemetry.Counter // tuner_replayed_records_total
	overflow      *telemetry.Counter // tuner_history_overflow_total
	active        *telemetry.Gauge   // tuner_sessions_active
}

// New builds an enabled tuner.
func New(o Options) *Tuner {
	if o.Policy.Interval == 0 {
		o.Policy = DefaultPolicy()
	}
	r := o.Telemetry
	return &Tuner{
		def:         o.Policy,
		maxSessions: int64(o.MaxSessions),
		m: metrics{
			sessions:      r.Counter("tuner_sessions_total"),
			rejected:      r.Counter("tuner_sessions_rejected_total"),
			swaps:         r.Counter("tuner_swaps_total"),
			escalations:   r.Counter("tuner_escalations_total"),
			deescalations: r.Counter("tuner_deescalations_total"),
			swapFailed:    r.Counter("tuner_swap_failed_total"),
			replayed:      r.Counter("tuner_replayed_records_total"),
			overflow:      r.Counter("tuner_history_overflow_total"),
			active:        r.Gauge("tuner_sessions_active"),
		},
	}
}

// DefaultPolicy returns the process default policy (zero Policy on nil).
func (t *Tuner) DefaultPolicy() Policy {
	if t == nil {
		return Policy{}
	}
	return t.def
}

// Session attaches a tuner to one serve session. base is the session's
// opening predictor config (the de-escalation target); track is its
// sessiontrack entry, which receives the miss-class sketch and swap counts.
// Returns nil — tune nothing — on the nil Tuner or when the process
// capacity gate is full (counted in tuner_sessions_rejected_total).
func (t *Tuner) Session(p Policy, base cli.PredictorFlags, track *sessiontrack.Session) *SessionTuner {
	if t == nil {
		return nil
	}
	if t.maxSessions > 0 {
		if t.tunedNow.Add(1) > t.maxSessions {
			t.tunedNow.Add(-1)
			t.m.rejected.Inc()
			return nil
		}
	} else {
		t.tunedNow.Add(1)
	}
	t.m.sessions.Inc()
	t.m.active.Add(1)
	st := &SessionTuner{
		t:          t,
		p:          p,
		base:       base,
		track:      track,
		warmupLeft: p.Warmup,
	}
	return st
}

// SessionTuner is one session's observe→decide state. It is owned by the
// session's shard worker: ObserveMiss and FrameEnd are called only from
// the worker goroutine and never allocate; Retune (the only cross-goroutine
// entry) is a single atomic store. All methods are nil-safe no-ops.
type SessionTuner struct {
	t     *Tuner
	p     Policy
	base  cli.PredictorFlags
	track *sessiontrack.Session

	// Window accumulators, reset at every evaluation.
	warmupLeft int
	executed   int
	misses     int
	classes    [numClasses]uint32
	// Per-frame sketch deltas, merged into the window (and flushed into
	// track) at each frame boundary.
	frameClasses [numClasses]uint32

	over, under int // consecutive windows voting escalate / de-escalate
	escalated   bool
	swaps       int
	// stopped flips when the swap budget or history cap is exhausted.
	// Atomic because Retune reads it from the admin-verb goroutine.
	stopped atomic.Bool

	force  atomic.Bool // set by Retune, consumed at the next FrameEnd
	closed atomic.Bool
}

// Policy returns the session's effective policy (zero on nil).
func (st *SessionTuner) Policy() Policy {
	if st == nil {
		return Policy{}
	}
	return st.p
}

// Escalated reports whether the session currently runs the escalation
// target.
func (st *SessionTuner) Escalated() bool { return st != nil && st.escalated }

// Swaps returns the number of decisions applied so far.
func (st *SessionTuner) Swaps() int {
	if st == nil {
		return 0
	}
	return st.swaps
}

// Retune asks the state machine to act at the next frame boundary,
// bypassing thresholds and hysteresis (the /sessions/{id}/retune admin
// verb). Escalates when observing, falls back when escalated. Safe from any
// goroutine. Returns false when the tuner is absent or out of budget.
// A forced decision is an operator action: it does not ride the journal, so
// it — unlike policy decisions — is not reproduced by failover replay.
func (st *SessionTuner) Retune() bool {
	if st == nil || st.stopped.Load() {
		return false
	}
	st.force.Store(true)
	return true
}

// ObserveMiss feeds one post-warmup misprediction into the sketch, carrying
// the predictor's attribution of the probe that missed: whether it hit a
// live table entry, whether an alternate component had the right target,
// and whether the update inserted a fresh entry / evicted a live one.
// Correctly predicted records are never observed — the tuner's per-record
// cost is confined to misses, and the executed/miss volume arrives in bulk
// at FrameEnd from accounting the session already keeps.
func (st *SessionTuner) ObserveMiss(tableHit, altCorrect, newEntry, evicted bool) {
	if st == nil {
		return
	}
	var class int
	switch {
	case altCorrect:
		class = ClassMeta
	case tableHit:
		class = ClassAlias
	case newEntry && !evicted:
		// The update inserted the pattern without displacing anyone: first
		// sighting in an uncontended slot — a cold miss.
		class = ClassCold
	default:
		class = ClassConflict
	}
	st.frameClasses[class]++
}

// FrameEnd marks a frame boundary: the frame's executed/miss counts join
// the decision window in bulk, the sketch deltas flush to sessiontrack and,
// when a window has filled (or a forced retune is pending), the policy
// votes. A non-nil Decision tells the caller to swap now — frame boundaries
// are the only legal swap points, because the router's journal preserves
// frame framing and replay must land the swap on the same record. Policy
// warmup is consumed at frame granularity: a frame that starts inside the
// warmup is excluded whole, which is deterministic for a given framing (and
// the journal preserves framing across failover). Steady state returns nil
// without allocating.
func (st *SessionTuner) FrameEnd(executed, misses int) *Decision {
	if st == nil {
		return nil
	}
	if st.frameClasses != [numClasses]uint32{} {
		st.track.AddMissClasses(
			uint64(st.frameClasses[ClassCold]), uint64(st.frameClasses[ClassConflict]),
			uint64(st.frameClasses[ClassAlias]), uint64(st.frameClasses[ClassMeta]))
	}
	if st.stopped.Load() {
		st.frameClasses = [numClasses]uint32{}
		return nil
	}
	if st.warmupLeft > 0 {
		st.warmupLeft -= executed
		st.frameClasses = [numClasses]uint32{}
		return nil
	}
	st.executed += executed
	st.misses += misses
	for i := range st.classes {
		st.classes[i] += st.frameClasses[i]
	}
	st.frameClasses = [numClasses]uint32{}
	forced := st.force.Load()
	if forced {
		st.force.Store(false)
	}
	if !forced && st.executed < st.p.Interval {
		return nil
	}
	rate := 0.0
	if st.executed > 0 {
		rate = float64(st.misses) / float64(st.executed)
	}
	coldShare := 0.0
	if st.misses > 0 {
		coldShare = float64(st.classes[ClassCold]) / float64(st.misses)
	}
	var dec *Decision
	if !st.escalated {
		if rate >= st.p.EscalateMiss && coldShare <= st.p.MaxColdShare {
			st.over++
		} else {
			st.over = 0
		}
		if forced || st.over >= st.p.Hysteresis {
			dec = &Decision{Target: st.p.Target, Escalate: true, Reason: "miss-rate"}
		}
	} else {
		if rate <= st.p.DeescalateMiss {
			st.under++
		} else {
			st.under = 0
		}
		if forced || st.under >= st.p.Hysteresis {
			dec = &Decision{Target: st.base, Escalate: false, Reason: "recovered"}
		}
	}
	if dec != nil && forced {
		dec.Reason = "forced"
	}
	if !forced {
		st.executed, st.misses = 0, 0
		st.classes = [numClasses]uint32{}
	}
	if dec == nil {
		return nil
	}
	st.swaps++
	st.escalated = dec.Escalate
	st.over, st.under = 0, 0
	st.executed, st.misses = 0, 0
	st.classes = [numClasses]uint32{}
	if st.swaps >= st.p.MaxSwaps {
		st.stopped.Store(true)
	}
	return dec
}

// SwapApplied records a successfully applied decision: the swap counters,
// the replayed-record volume, and the session's live predictor name.
func (st *SessionTuner) SwapApplied(d *Decision, predName string, replayedRecords int) {
	if st == nil || st.t == nil {
		return
	}
	st.t.m.swaps.Inc()
	if d.Escalate {
		st.t.m.escalations.Inc()
	} else {
		st.t.m.deescalations.Inc()
	}
	st.t.m.replayed.Add(uint64(replayedRecords))
	st.track.PredictorSwapped(predName)
}

// SwapFailed records a decision the serve layer could not apply (predictor
// construction failed); the tuner stops for this session rather than retry
// into the same error.
func (st *SessionTuner) SwapFailed() {
	if st == nil || st.t == nil {
		return
	}
	st.stopped.Store(true)
	st.t.m.swapFailed.Inc()
}

// HistoryOverflow records that the session outgrew the replay-history cap;
// tuning stops (no further swaps) so bit-reproducibility is preserved.
func (st *SessionTuner) HistoryOverflow() {
	if st == nil || st.t == nil || st.stopped.Load() {
		return
	}
	st.stopped.Store(true)
	st.t.m.overflow.Inc()
}

// Stopped reports whether the tuner has permanently stopped deciding for
// this session (budget spent, history cap hit, or a swap failed). The serve
// layer uses it to stop retaining history.
func (st *SessionTuner) Stopped() bool { return st == nil || st.stopped.Load() }

// Close releases the session's slot in the process capacity gate. Safe from
// any exit path (idempotent, nil-safe); the worker may still be mid-frame,
// so it only touches the capacity accounting, never the decision state.
func (st *SessionTuner) Close() {
	if st == nil || !st.closed.CompareAndSwap(false, true) {
		return
	}
	st.t.tunedNow.Add(-1)
	st.t.m.active.Add(-1)
}
