package tuner

import (
	"strings"
	"testing"
)

func TestParsePolicyDefaults(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		want := DefaultPolicy()
		if p.String() != want.String() {
			t.Fatalf("empty spec = %s, want defaults %s", p, want)
		}
	}
	def := DefaultPolicy()
	if def.TargetSpec != "ittage:8,512,2" {
		t.Fatalf("default target = %q", def.TargetSpec)
	}
	if _, err := def.Target.Build(); err != nil {
		t.Fatalf("default target does not build: %v", err)
	}
}

func TestParsePolicyOverrides(t *testing.T) {
	p, err := ParsePolicy("warmup=0; interval=64 ;miss=0.2;low=0.01;hyst=1;swaps=5;coldmax=0.9;histmax=1024;target=btb-2bc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Warmup != 0 || p.Interval != 64 || p.EscalateMiss != 0.2 || p.DeescalateMiss != 0.01 ||
		p.Hysteresis != 1 || p.MaxSwaps != 5 || p.MaxColdShare != 0.9 || p.MaxHistoryBytes != 1024 {
		t.Fatalf("parsed policy %+v", p)
	}
	if p.TargetSpec != "btb-2bc" || p.Target.Pred != "btb-2bc" {
		t.Fatalf("target not applied: %+v", p.Target)
	}
}

func TestParsePolicyRejects(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"interval", "not key=value"},
		{"speed=9", "unknown policy key"},
		{"interval=0", "at least 1"},
		{"interval=x", "not an integer"},
		{"miss=1.5", "fraction"},
		{"miss=-0.1", "fraction"},
		{"miss=0.05;low=0.05", "must be below"},
		{"low=0.5", "must be below"}, // default miss=0.10
		{"target=oracle", "pred"},
		{"target=ittage:8,500,2", "power of two"},
	}
	for _, tc := range cases {
		_, err := ParsePolicy(tc.spec)
		if err == nil {
			t.Errorf("ParsePolicy(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParsePolicy(%q) = %v, want error mentioning %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestPolicyStringRoundTrips(t *testing.T) {
	p, err := ParsePolicy("interval=128;miss=0.25;target=ittage:4,256,2")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePolicy(p.String())
	if err != nil {
		t.Fatalf("String() output does not re-parse: %v", err)
	}
	if back.String() != p.String() {
		t.Fatalf("round trip %s != %s", back, p)
	}
}

// testPolicy is a small deterministic policy for state-machine tests:
// no warmup, 8-branch windows, escalate ≥50% miss, fall back ≤10%.
func testPolicy(t *testing.T) Policy {
	t.Helper()
	p, err := ParsePolicy("warmup=0;interval=8;miss=0.5;low=0.1;hyst=2;swaps=4;coldmax=0.5")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// feedWindow pushes one full decision window with the given number of misses
// (classified via tableHit so the class is alias — never cold) and returns
// FrameEnd's decision.
func feedWindow(st *SessionTuner, interval, misses int) *Decision {
	for i := 0; i < misses; i++ {
		st.ObserveMiss(true, false, false, false)
	}
	return st.FrameEnd(interval, misses)
}

func newTestSession(t *testing.T, p Policy) *SessionTuner {
	t.Helper()
	tun := New(Options{Policy: p})
	base, err := PredictorFor("btb-2bc")
	if err != nil {
		t.Fatal(err)
	}
	st := tun.Session(p, base, nil)
	if st == nil {
		t.Fatal("Session returned nil without a capacity gate")
	}
	return st
}

func TestTunerEscalatesWithHysteresis(t *testing.T) {
	p := testPolicy(t)
	st := newTestSession(t, p)

	// First bad window: one vote, no decision yet (hyst=2).
	if d := feedWindow(st, p.Interval, p.Interval); d != nil {
		t.Fatalf("escalated after one window despite hyst=2: %+v", d)
	}
	// A good window in between resets the streak.
	if d := feedWindow(st, p.Interval, 0); d != nil {
		t.Fatalf("decision on a clean window: %+v", d)
	}
	if d := feedWindow(st, p.Interval, p.Interval); d != nil {
		t.Fatalf("streak not reset by the clean window: %+v", d)
	}
	// Second consecutive bad window: escalate.
	d := feedWindow(st, p.Interval, p.Interval)
	if d == nil || !d.Escalate {
		t.Fatalf("no escalation after %d consecutive bad windows: %+v", p.Hysteresis, d)
	}
	if d.Target.Pred != p.TargetSpec {
		t.Fatalf("escalation target %q, want %q", d.Target.Pred, p.TargetSpec)
	}
	if d.Reason != "miss-rate" {
		t.Fatalf("reason %q", d.Reason)
	}
	if !st.Escalated() || st.Swaps() != 1 {
		t.Fatalf("post-swap state: escalated=%v swaps=%d", st.Escalated(), st.Swaps())
	}
}

func TestTunerDeescalates(t *testing.T) {
	p := testPolicy(t)
	st := newTestSession(t, p)
	feedWindow(st, p.Interval, p.Interval)
	if d := feedWindow(st, p.Interval, p.Interval); d == nil {
		t.Fatal("setup escalation failed")
	}
	// Two consecutive quiet windows fall back to the base predictor.
	if d := feedWindow(st, p.Interval, 0); d != nil {
		t.Fatalf("fell back after one window despite hyst=2: %+v", d)
	}
	d := feedWindow(st, p.Interval, 0)
	if d == nil || d.Escalate {
		t.Fatalf("no de-escalation: %+v", d)
	}
	if d.Target.Pred != "btb-2bc" {
		t.Fatalf("fallback target %q, want the session base", d.Target.Pred)
	}
	if d.Reason != "recovered" {
		t.Fatalf("reason %q", d.Reason)
	}
	if st.Escalated() {
		t.Fatal("still marked escalated after falling back")
	}
}

// TestTunerColdGate: a miss stream dominated by cold (first-touch) patterns
// must not trigger escalation — a bigger predictor would miss those too.
func TestTunerColdGate(t *testing.T) {
	p := testPolicy(t)
	st := newTestSession(t, p)
	coldWindow := func() *Decision {
		for i := 0; i < p.Interval; i++ {
			// Table miss whose update allocated a fresh entry without
			// displacing anyone: classified cold.
			st.ObserveMiss(false, false, true, false)
		}
		return st.FrameEnd(p.Interval, p.Interval)
	}
	for i := 0; i < 6; i++ {
		if d := coldWindow(); d != nil {
			t.Fatalf("cold-dominated window %d escalated: %+v", i, d)
		}
	}
	if st.Swaps() != 0 {
		t.Fatalf("swaps = %d", st.Swaps())
	}
}

func TestTunerSwapBudgetStops(t *testing.T) {
	p := testPolicy(t) // swaps=4
	st := newTestSession(t, p)
	flip := func(misses int) *Decision {
		var d *Decision
		for i := 0; i < p.Hysteresis; i++ {
			d = feedWindow(st, p.Interval, misses)
		}
		return d
	}
	for want := 1; want <= p.MaxSwaps; want++ {
		misses := p.Interval // escalate
		if st.Escalated() {
			misses = 0 // de-escalate
		}
		if d := flip(misses); d == nil {
			t.Fatalf("swap %d did not happen", want)
		}
		if st.Swaps() != want {
			t.Fatalf("swaps = %d, want %d", st.Swaps(), want)
		}
	}
	if !st.Stopped() {
		t.Fatal("tuner still live after exhausting the swap budget")
	}
	if d := flip(p.Interval); d != nil {
		t.Fatalf("decision after budget exhausted: %+v", d)
	}
	if st.Retune() {
		t.Fatal("Retune succeeded on a stopped tuner")
	}
}

func TestTunerForcedRetune(t *testing.T) {
	p := testPolicy(t)
	st := newTestSession(t, p)
	if !st.Retune() {
		t.Fatal("Retune refused on a live tuner")
	}
	// One record, nowhere near a full window — the forced flag overrides
	// interval, thresholds, and hysteresis.
	d := st.FrameEnd(1, 0)
	if d == nil || !d.Escalate || d.Reason != "forced" {
		t.Fatalf("forced decision = %+v", d)
	}
	// The force flag is one-shot.
	if d := feedWindow(st, p.Interval, 0); d != nil {
		t.Fatalf("force flag not consumed: %+v", d)
	}
}

func TestTunerPolicyWarmupDelaysFirstWindow(t *testing.T) {
	p, err := ParsePolicy("warmup=16;interval=8;miss=0.5;low=0.1;hyst=1")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestSession(t, p)
	// Warmup is consumed at frame granularity: two 8-record frames burn the
	// 16-record warmup, and neither their misses nor their sketch may leak
	// into the decision window.
	for frame := 0; frame < 2; frame++ {
		for i := 0; i < 8; i++ {
			st.ObserveMiss(true, false, false, false)
		}
		if d := st.FrameEnd(8, 8); d != nil {
			t.Fatalf("decision during policy warmup at frame %d: %+v", frame, d)
		}
	}
	if st.executed != 0 || st.misses != 0 || st.classes != [numClasses]uint32{} {
		t.Fatalf("warmup frames leaked into the window: executed=%d misses=%d classes=%v",
			st.executed, st.misses, st.classes)
	}
	// The first post-warmup frame fills the 8-record window and decides.
	for i := 0; i < 8; i++ {
		st.ObserveMiss(true, false, false, false)
	}
	if d := st.FrameEnd(8, 8); d == nil {
		t.Fatal("no decision once the first post-warmup window filled")
	}
}

// TestTunerStoppedDropsSketch: a stopped tuner keeps flushing nothing into
// the decision window — frames observed after the budget is spent are
// discarded whole.
func TestTunerStoppedDropsSketch(t *testing.T) {
	p := testPolicy(t)
	st := newTestSession(t, p)
	st.stopped.Store(true)
	for i := 0; i < p.Interval; i++ {
		st.ObserveMiss(true, false, false, false)
	}
	if d := st.FrameEnd(p.Interval, p.Interval); d != nil {
		t.Fatalf("stopped tuner decided: %+v", d)
	}
	if st.executed != 0 || st.misses != 0 {
		t.Fatalf("stopped tuner accumulated a window: executed=%d misses=%d", st.executed, st.misses)
	}
}

func TestTunerCapacityGate(t *testing.T) {
	p := testPolicy(t)
	tun := New(Options{Policy: p, MaxSessions: 2})
	base, _ := PredictorFor("btb-2bc")
	a := tun.Session(p, base, nil)
	b := tun.Session(p, base, nil)
	if a == nil || b == nil {
		t.Fatal("sessions under the cap rejected")
	}
	if c := tun.Session(p, base, nil); c != nil {
		t.Fatal("session over the cap accepted")
	}
	a.Close()
	a.Close() // idempotent
	if d := tun.Session(p, base, nil); d == nil {
		t.Fatal("slot not released by Close")
	}
}

func TestTunerNilSafe(t *testing.T) {
	var tun *Tuner
	if p := tun.DefaultPolicy(); p != (Policy{}) {
		t.Fatalf("nil tuner default policy = %+v", p)
	}
	st := tun.Session(Policy{}, DefaultPolicy().Target, nil)
	if st != nil {
		t.Fatal("nil tuner handed out a session")
	}
	// Every method on the nil session tuner must be a safe no-op.
	st.ObserveMiss(true, false, true, false)
	if d := st.FrameEnd(8, 1); d != nil {
		t.Fatalf("nil session tuner decided: %+v", d)
	}
	if st.Retune() {
		t.Fatal("nil session tuner accepted a retune")
	}
	if !st.Stopped() {
		t.Fatal("nil session tuner claims to be running")
	}
	st.SwapApplied(nil, "", 0)
	st.SwapFailed()
	st.HistoryOverflow()
	st.Close()
	_ = st.Policy()
	_ = st.Escalated()
	_ = st.Swaps()
}

// TestTunerDisabledZeroAllocs is the disabled-path cost contract: with no
// tuner configured (nil handles), the per-record and per-frame hooks must
// not allocate. The CI zero-alloc job greps for this test, so it must never
// t.Skip.
func TestTunerDisabledZeroAllocs(t *testing.T) {
	var st *SessionTuner
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			st.ObserveMiss(true, false, i&3 == 0, false)
		}
		if st.FrameEnd(64, 8) != nil {
			t.Fatal("nil tuner decided")
		}
	})
	if avg != 0 {
		t.Fatalf("disabled tuner path allocates %.1f/op, want 0", avg)
	}
}

// TestTunerSamplingZeroAllocs is the enabled steady-state cost contract:
// observing records and closing frames that do not produce a decision must
// not allocate (the Decision itself is allocated only on rare swaps). The
// CI zero-alloc job greps for this test, so it must never t.Skip.
func TestTunerSamplingZeroAllocs(t *testing.T) {
	p, err := ParsePolicy("warmup=0;interval=1000000;miss=0.5;low=0.1")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestSession(t, p)
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			st.ObserveMiss(i&3 != 0, i&15 == 0, i&7 == 0, i&5 == 0)
		}
		if st.FrameEnd(64, 8) != nil {
			t.Fatal("unexpected decision")
		}
	})
	if avg != 0 {
		t.Fatalf("enabled tuner sampling allocates %.1f/op, want 0", avg)
	}
}
