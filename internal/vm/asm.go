package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates the VM's assembly text into a Program.
//
// Syntax (one item per line, '#' starts a comment):
//
//	class <name> fields=<n> vtable=<func>,<func>,...
//	table <name> = <label>,<label>,...
//	func <name> [params=<n>] [locals=<n>]
//	<label>:
//	<op> [<arg>]
//
// Instruction arguments are integers, labels (jmp/jz/jnz), function names
// (call, or push for function values), class names (new), or table names
// (switch). Labels share one global namespace. Execution starts at the
// function named "main".
func Assemble(src string) (*Program, error) {
	p := &Program{Main: -1}
	type fixup struct {
		pc   int
		kind string // "label", "func", "class", "table", "fnval"
		name string
		line int
	}
	var (
		fixups     []fixup
		labels     = map[string]int{}
		funcIdx    = map[string]int{}
		classIdx   = map[string]int{}
		tableIdx   = map[string]int{}
		tableLists [][]string
		classVTs   [][]string
		curFunc    = -1
	)
	opByName := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		opByName[op.String()] = op
	}

	fail := func(line int, format string, args ...any) error {
		return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := lineNo + 1
		text := raw
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "class":
			if len(fields) < 2 {
				return nil, fail(line, "class needs a name")
			}
			name := fields[1]
			if _, dup := classIdx[name]; dup {
				return nil, fail(line, "duplicate class %q", name)
			}
			c := Class{Name: name}
			var vts []string
			for _, f := range fields[2:] {
				switch {
				case strings.HasPrefix(f, "fields="):
					n, err := strconv.Atoi(strings.TrimPrefix(f, "fields="))
					if err != nil || n < 0 {
						return nil, fail(line, "bad fields count %q", f)
					}
					c.Fields = n
				case strings.HasPrefix(f, "vtable="):
					vts = strings.Split(strings.TrimPrefix(f, "vtable="), ",")
				default:
					return nil, fail(line, "unknown class attribute %q", f)
				}
			}
			classIdx[name] = len(p.Classes)
			p.Classes = append(p.Classes, c)
			classVTs = append(classVTs, vts)
		case fields[0] == "table":
			// table name = a,b,c  (also tolerate "table name a,b,c")
			rest := strings.TrimSpace(strings.TrimPrefix(text, "table"))
			eq := strings.SplitN(rest, "=", 2)
			name := strings.TrimSpace(eq[0])
			if name == "" {
				return nil, fail(line, "table needs a name")
			}
			if len(eq) != 2 {
				return nil, fail(line, "table needs '= label,label,...'")
			}
			if _, dup := tableIdx[name]; dup {
				return nil, fail(line, "duplicate table %q", name)
			}
			var entries []string
			for _, e := range strings.Split(eq[1], ",") {
				e = strings.TrimSpace(e)
				if e != "" {
					entries = append(entries, e)
				}
			}
			if len(entries) == 0 {
				return nil, fail(line, "table %q has no entries", name)
			}
			tableIdx[name] = len(tableLists)
			tableLists = append(tableLists, entries)
		case fields[0] == "func":
			if len(fields) < 2 {
				return nil, fail(line, "func needs a name")
			}
			name := fields[1]
			if _, dup := funcIdx[name]; dup {
				return nil, fail(line, "duplicate function %q", name)
			}
			fn := Func{Name: name, Entry: len(p.Code)}
			for _, f := range fields[2:] {
				switch {
				case strings.HasPrefix(f, "params="):
					n, err := strconv.Atoi(strings.TrimPrefix(f, "params="))
					if err != nil || n < 0 {
						return nil, fail(line, "bad params %q", f)
					}
					fn.Params = n
				case strings.HasPrefix(f, "locals="):
					n, err := strconv.Atoi(strings.TrimPrefix(f, "locals="))
					if err != nil || n < 0 {
						return nil, fail(line, "bad locals %q", f)
					}
					fn.Locals = n
				default:
					return nil, fail(line, "unknown func attribute %q", f)
				}
			}
			if fn.Locals < fn.Params {
				fn.Locals = fn.Params
			}
			funcIdx[name] = len(p.Funcs)
			if name == "main" {
				p.Main = len(p.Funcs)
			}
			p.Funcs = append(p.Funcs, fn)
			curFunc = funcIdx[name]
		case strings.HasSuffix(fields[0], ":") && len(fields) == 1:
			name := strings.TrimSuffix(fields[0], ":")
			if _, dup := labels[name]; dup {
				return nil, fail(line, "duplicate label %q", name)
			}
			labels[name] = len(p.Code)
		default:
			op, ok := opByName[fields[0]]
			if !ok {
				return nil, fail(line, "unknown opcode %q", fields[0])
			}
			if curFunc < 0 {
				return nil, fail(line, "instruction outside a function")
			}
			in := Instr{Op: op}
			if len(fields) > 2 {
				return nil, fail(line, "too many operands")
			}
			if len(fields) == 2 {
				arg := fields[1]
				if n, err := strconv.ParseInt(arg, 0, 32); err == nil {
					in.Arg = int32(n)
				} else {
					kind := ""
					switch op {
					case OpJmp, OpJz, OpJnz:
						kind = "label"
					case OpCall:
						kind = "func"
					case OpPush:
						kind = "fnval"
					case OpNew:
						kind = "class"
					case OpSwitch:
						kind = "table"
					default:
						return nil, fail(line, "opcode %s takes a numeric operand", op)
					}
					fixups = append(fixups, fixup{pc: len(p.Code), kind: kind, name: arg, line: line})
				}
			} else if needsArg(op) {
				return nil, fail(line, "opcode %s needs an operand", op)
			}
			p.Code = append(p.Code, in)
		}
	}

	// Resolve symbolic operands.
	for _, fx := range fixups {
		var v int
		var ok bool
		switch fx.kind {
		case "label":
			v, ok = labels[fx.name]
		case "func", "fnval":
			v, ok = funcIdx[fx.name]
		case "class":
			v, ok = classIdx[fx.name]
		case "table":
			v, ok = tableIdx[fx.name]
		}
		if !ok {
			return nil, fail(fx.line, "undefined %s %q", fx.kind, fx.name)
		}
		p.Code[fx.pc].Arg = int32(v)
	}
	// Resolve switch tables and vtables.
	for _, entries := range tableLists {
		tbl := make([]int, len(entries))
		for i, label := range entries {
			pc, ok := labels[label]
			if !ok {
				return nil, fmt.Errorf("asm: table entry %q is not a label", label)
			}
			tbl[i] = pc
		}
		p.Tables = append(p.Tables, tbl)
	}
	for ci, vts := range classVTs {
		for _, fn := range vts {
			fi, ok := funcIdx[fn]
			if !ok {
				return nil, fmt.Errorf("asm: class %s vtable entry %q is not a function", p.Classes[ci].Name, fn)
			}
			p.Classes[ci].VTable = append(p.Classes[ci].VTable, fi)
		}
	}
	if p.Main < 0 {
		return nil, fmt.Errorf("asm: no main function")
	}
	return p, nil
}

// needsArg reports whether an opcode requires an operand.
func needsArg(op Op) bool {
	switch op {
	case OpPush, OpLoad, OpStore, OpJmp, OpJz, OpJnz,
		OpCall, OpSwitch, OpNew, OpGetF, OpSetF, OpVCall:
		return true
	}
	return false
}

// MustAssemble is Assemble for statically-known sources.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}
