package vm

import (
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
# a comment
func main locals=1
  push 42   # trailing comment
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Main != 0 || len(p.Funcs) != 1 || p.Funcs[0].Name != "main" {
		t.Fatalf("funcs: %+v", p.Funcs)
	}
	if len(p.Code) != 2 || p.Code[0] != (Instr{OpPush, 42}) || p.Code[1].Op != OpRet {
		t.Fatalf("code: %+v", p.Code)
	}
}

func TestAssembleSymbols(t *testing.T) {
	p, err := Assemble(`
class C fields=1 vtable=m
table tt = a,b
func m params=1
  push 0
  ret
func main
a:
  push 1
  jz a
b:
  call m
  new C
  vcall 0
  push 0
  switch tt
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 1 || p.Classes[0].VTable[0] != 0 {
		t.Fatalf("classes: %+v", p.Classes)
	}
	if len(p.Tables) != 1 || len(p.Tables[0]) != 2 {
		t.Fatalf("tables: %+v", p.Tables)
	}
	// Label "a" is the first instruction of main (index 2: m has 2).
	if p.Tables[0][0] != 2 {
		t.Errorf("table entry a = %d", p.Tables[0][0])
	}
}

func TestAssembleParamsDefaultLocals(t *testing.T) {
	p, err := Assemble("func main params=3\nret")
	if err != nil {
		t.Fatal(err)
	}
	if p.Funcs[0].Locals != 3 {
		t.Errorf("locals = %d, want params-sized 3", p.Funcs[0].Locals)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"push 1", "outside a function"},
		{"func main\nbogus 1", "unknown opcode"},
		{"func main\npush", "needs an operand"},
		{"func main\npush 1 2", "too many operands"},
		{"func main\njmp nowhere", "undefined label"},
		{"func main\ncall nowhere", "undefined func"},
		{"func main\nnew Nope", "undefined class"},
		{"func main\nswitch nope", "undefined table"},
		{"func main\nadd foo", "numeric operand"},
		{"func f\nret", "no main"},
		{"func main\nret\nfunc main\nret", "duplicate function"},
		{"func main\nx:\nx:\nret", "duplicate label"},
		{"class C\nclass C\nfunc main\nret", "duplicate class"},
		{"class", "class needs a name"},
		{"class C junk=1\nfunc main\nret", "unknown class attribute"},
		{"class C fields=x\nfunc main\nret", "bad fields"},
		{"func", "func needs a name"},
		{"func main junk=2\nret", "unknown func attribute"},
		{"func main params=x\nret", "bad params"},
		{"func main locals=-1\nret", "bad locals"},
		{"table t\nfunc main\nret", "table needs"},
		{"table = a\nfunc main\nret", "table needs a name"},
		{"table t =\nfunc main\nret", "no entries"},
		{"table t = a\ntable t = a\nfunc main\na:\nret", "duplicate table"},
		{"table t = zz\nfunc main\nret", "not a label"},
		{"class C vtable=zz\nfunc main\nret", "not a function"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	MustAssemble("junk")
}

func TestAllSamplesAssemble(t *testing.T) {
	for name, src := range Samples() {
		if _, err := Assemble(src); err != nil {
			t.Errorf("sample %s: %v", name, err)
		}
	}
	if len(SampleNames()) != 4 {
		t.Errorf("SampleNames = %v", SampleNames())
	}
}
