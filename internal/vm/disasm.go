package vm

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Disassemble writes a human-readable listing of the program: functions in
// entry order with their instructions, plus class and switch-table
// summaries. The output round-trips conceptually (it is valid input for a
// reader, not for Assemble — labels are rendered as absolute indices).
func Disassemble(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)

	for _, c := range p.Classes {
		fmt.Fprintf(bw, "class %s fields=%d vtable=", c.Name, c.Fields)
		for i, fi := range c.VTable {
			if i > 0 {
				fmt.Fprint(bw, ",")
			}
			fmt.Fprint(bw, funcName(p, fi))
		}
		fmt.Fprintln(bw)
	}
	for ti, tbl := range p.Tables {
		fmt.Fprintf(bw, "table %d = %v\n", ti, tbl)
	}

	// Order functions by entry so the listing follows the code layout.
	order := make([]int, len(p.Funcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.Funcs[order[a]].Entry < p.Funcs[order[b]].Entry })

	starts := make(map[int]int, len(p.Funcs)) // code index -> func index
	for fi, f := range p.Funcs {
		starts[f.Entry] = fi
	}
	for pc, in := range p.Code {
		if fi, ok := starts[pc]; ok {
			f := p.Funcs[fi]
			fmt.Fprintf(bw, "\nfunc %s params=%d locals=%d", f.Name, f.Params, f.Locals)
			if fi == p.Main {
				fmt.Fprint(bw, "  # entry point")
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "%5d  %-7s", pc, in.Op)
		switch in.Op {
		case OpCall:
			fmt.Fprintf(bw, " %s", funcName(p, int(in.Arg)))
		case OpNew:
			if int(in.Arg) < len(p.Classes) {
				fmt.Fprintf(bw, " %s", p.Classes[in.Arg].Name)
			} else {
				fmt.Fprintf(bw, " class?%d", in.Arg)
			}
		case OpJmp, OpJz, OpJnz:
			fmt.Fprintf(bw, " ->%d", in.Arg)
		case OpSwitch:
			fmt.Fprintf(bw, " table%d", in.Arg)
		case OpPush, OpLoad, OpStore, OpGetF, OpSetF, OpVCall:
			fmt.Fprintf(bw, " %d", in.Arg)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func funcName(p *Program, fi int) string {
	if fi >= 0 && fi < len(p.Funcs) {
		return p.Funcs[fi].Name
	}
	return fmt.Sprintf("func?%d", fi)
}
