package vm

import (
	"bytes"
	"strings"
	"testing"
)

func TestDisassemble(t *testing.T) {
	p := MustAssemble(srcShapes)
	var buf bytes.Buffer
	if err := Disassemble(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"class Circle fields=1 vtable=Circle.area",
		"func main",
		"# entry point",
		"vcall",
		"table 0 =",
		"new",
		"Circle.area",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("disassembly missing %q", frag)
		}
	}
	// Every instruction appears exactly once: count lines with opcodes.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	instrLines := 0
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "0") ||
			(len(l) > 5 && l[5] == ' ' && l[0] == ' ') {
			instrLines++
		}
	}
	if instrLines < len(p.Code) {
		t.Errorf("disassembly shows %d instruction lines for %d instructions", instrLines, len(p.Code))
	}
}

func TestDisassembleBadReferences(t *testing.T) {
	p := &Program{
		Code:    []Instr{{Op: OpCall, Arg: 7}, {Op: OpNew, Arg: 9}},
		Funcs:   []Func{{Name: "main", Entry: 0}},
		Classes: []Class{{Name: "C", VTable: []int{42}}},
		Main:    0,
	}
	var buf bytes.Buffer
	if err := Disassemble(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "func?7") || !strings.Contains(out, "class?9") || !strings.Contains(out, "func?42") {
		t.Errorf("dangling references not marked:\n%s", out)
	}
}
