package vm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks that the assembler never panics and that accepted
// programs either run to completion or fail with a clean error under a small
// step budget.
func FuzzAssemble(f *testing.F) {
	for _, src := range Samples() {
		f.Add(src)
	}
	f.Add("func main\nret")
	f.Add("class C fields=1 vtable=m\nfunc m params=1\nret\nfunc main\nnew C\nvcall 0\nret")
	f.Add("table t = a\nfunc main\na:\npush 0\nswitch t")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		p, err := Assemble(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "asm:") {
				t.Fatalf("error without asm prefix: %v", err)
			}
			return
		}
		m := New(p, Options{MaxSteps: 5000, TraceDispatch: true, TraceCond: true})
		if _, err := m.Run(); err != nil && !strings.HasPrefix(err.Error(), "vm:") {
			t.Fatalf("runtime error without vm prefix: %v", err)
		}
		if err := m.Trace().Validate(); err != nil {
			t.Fatalf("VM produced invalid trace: %v", err)
		}
	})
}
