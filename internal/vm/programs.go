package vm

import (
	"fmt"
	"sort"

	"github.com/oocsb/ibp/internal/trace"
)

// Samples returns the built-in demonstration programs, keyed by name:
//
//   - "fib": deeply recursive calls and returns (return address stack food)
//   - "tokens": an interpreter-style loop switching over a pseudo-random
//     token stream (the xlisp/perl-shaped switch workload)
//   - "shapes": polymorphic virtual calls over a cyclic mix of classes
//   - "dispatch": indirect calls through function values
func Samples() map[string]string {
	return map[string]string{
		"fib":      srcFib,
		"tokens":   srcTokens,
		"shapes":   srcShapes,
		"dispatch": srcDispatch,
	}
}

// SampleNames returns the sample program names in sorted order.
func SampleNames() []string {
	m := Samples()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunSample assembles and executes a built-in program, returning its result
// value and branch trace.
func RunSample(name string, opts Options) (int64, trace.Trace, error) {
	src, ok := Samples()[name]
	if !ok {
		return 0, nil, fmt.Errorf("vm: unknown sample %q (have %v)", name, SampleNames())
	}
	prog, err := Assemble(src)
	if err != nil {
		return 0, nil, err
	}
	m := New(prog, opts)
	v, err := m.Run()
	if err != nil {
		return 0, nil, err
	}
	return v, m.Trace(), nil
}

const srcFib = `
# Recursive Fibonacci: every call site returns through the stack, the
# workload the return address stack of [KE91] is built for.
func main
  push 17
  call fib
  ret

func fib params=1
  load 0
  push 2
  lt
  jz rec
  load 0
  ret
rec:
  load 0
  push 1
  sub
  call fib
  load 0
  push 2
  sub
  call fib
  add
  ret
`

const srcTokens = `
# An interpreter-style token loop: a linear-congruential stream of token
# kinds drives a switch jump table, the classic indirect-branch profile of
# interpreters (xlisp, perl).
func main locals=3
  push 4000
  store 0          # remaining tokens
  push 12345
  store 1          # lcg state
loop:
  load 0
  jz done
  load 0
  push 1
  sub
  store 0
  load 1           # state = (state*25173 + 13849) mod 65536
  push 25173
  mul
  push 13849
  add
  push 65536
  mod
  store 1
  load 1
  switch tok
t0:
  load 2
  push 1
  add
  store 2
  jmp loop
t1:
  load 2
  push 2
  add
  store 2
  jmp loop
t2:
  load 2
  push 3
  sub
  store 2
  jmp loop
t3:
  load 2
  push 2
  mul
  store 2
  jmp loop
t4:
  load 2
  push 7
  add
  store 2
  jmp loop
t5:
  load 2
  push 1000003
  mod
  store 2
  jmp loop
t6:
  load 2
  push 5
  sub
  store 2
  jmp loop
t7:
  load 2
  neg
  store 2
  jmp loop
done:
  load 2
  ret
table tok = t0,t1,t2,t3,t4,t5,t6,t7
`

const srcShapes = `
# Polymorphic virtual dispatch: a cyclic mix of three classes, each with its
# own area method reached through the vtable (the C++ suite's profile).
class Circle fields=1 vtable=Circle.area
class Square fields=1 vtable=Square.area
class Tri    fields=2 vtable=Tri.area

func Circle.area params=1
  load 0
  getf 0
  dup
  mul
  push 3
  mul
  ret

func Square.area params=1
  load 0
  getf 0
  dup
  mul
  ret

func Tri.area params=1
  load 0
  getf 0
  load 0
  getf 1
  mul
  push 2
  mod
  ret

func main locals=4
  push 2000
  store 0          # iterations
  push 0
  store 1          # class selector
  push 0
  store 2          # accumulator
loop:
  load 0
  jz done
  load 0
  push 1
  sub
  store 0
  load 1
  push 1
  add
  store 1
  load 1
  switch mk
mkc:
  new Circle
  store 3
  load 3
  push 4
  setf 0
  jmp callit
mks:
  new Square
  store 3
  load 3
  push 6
  setf 0
  jmp callit
mkt:
  new Tri
  store 3
  load 3
  push 3
  setf 0
  load 3
  push 5
  setf 1
  jmp callit
callit:
  load 3
  vcall 0
  load 2
  add
  store 2
  jmp loop
done:
  load 2
  ret
table mk = mkc,mks,mkt
`

const srcDispatch = `
# Indirect calls through first-class function values: a strategy function is
# selected by data and invoked via callfn (function-pointer dispatch).
func lt2 params=2
  load 0
  load 1
  lt
  ret

func gt2 params=2
  load 1
  load 0
  lt
  ret

func sum2 params=2
  load 0
  load 1
  add
  ret

func main locals=4
  push 3000
  store 0
  push 0
  store 2
loop:
  load 0
  jz done
  load 0
  push 1
  sub
  store 0
  load 0
  push 3
  mod
  store 1
  load 0          # first argument
  push 17
  mod
  load 0          # second argument
  push 5
  mod
  load 1
  switch pick
pa:
  push lt2
  jmp invoke
pb:
  push gt2
  jmp invoke
pc2:
  push sum2
  jmp invoke
invoke:
  callfn
  load 2
  add
  store 2
  jmp loop
done:
  load 2
  ret
table pick = pa,pb,pc2
`
