// Package vm implements a small stack-based bytecode virtual machine whose
// execution produces genuine indirect-branch traces: a threaded-code
// dispatch loop (one indirect jump per executed instruction, like the
// interpreters that dominate xlisp's and perl's branch profiles), virtual
// method calls through per-class vtables, switch jump tables, indirect calls
// through function values, and call/return pairs. It complements the
// statistical workload generator with a substrate whose branch correlations
// come from an actual program.
package vm

import (
	"fmt"

	"github.com/oocsb/ibp/internal/trace"
)

// Op is a bytecode opcode.
type Op uint8

// The instruction set: a conventional expression-stack machine with locals,
// control flow, first-class function indices, and class-based objects.
const (
	OpHalt   Op = iota
	OpPush      // push immediate Arg
	OpPop       // discard TOS
	OpDup       // duplicate TOS
	OpAdd       // a b -- a+b
	OpSub       // a b -- a-b
	OpMul       // a b -- a*b
	OpMod       // a b -- a%b (b != 0)
	OpNeg       // a -- -a
	OpLt        // a b -- a<b
	OpEq        // a b -- a==b
	OpNot       // a -- !a
	OpLoad      // push locals[Arg]
	OpStore     // locals[Arg] = pop
	OpJmp       // jump to Arg
	OpJz        // pop; jump to Arg if zero    (conditional branch)
	OpJnz       // pop; jump to Arg if nonzero (conditional branch)
	OpCall      // call function Arg
	OpCallFn    // pop function index; call it (indirect call)
	OpRet       // return TOS to caller
	OpSwitch    // pop v; jump via table Arg, entry v mod len (switch jump)
	OpNew       // push new object of class Arg
	OpGetF      // pop obj; push obj.fields[Arg]
	OpSetF      // pop value, obj; obj.fields[Arg] = value
	OpVCall     // pop obj; virtual call via vtable slot Arg (virtual call)

	numOps
)

var opNames = [numOps]string{
	"halt", "push", "pop", "dup", "add", "sub", "mul", "mod", "neg",
	"lt", "eq", "not", "load", "store", "jmp", "jz", "jnz",
	"call", "callfn", "ret", "switch", "new", "getf", "setf", "vcall",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Arg int32
}

// Func is a callable unit.
type Func struct {
	Name   string
	Entry  int // index into Program.Code
	Params int // number of arguments popped into locals[0..Params)
	Locals int // total locals (>= Params)
}

// Class describes an object layout and its virtual dispatch table.
type Class struct {
	Name   string
	Fields int
	// VTable maps method slots to function indices.
	VTable []int
}

// Program is an executable bytecode image.
type Program struct {
	Code    []Instr
	Funcs   []Func
	Classes []Class
	Tables  [][]int // switch jump tables (code indices)
	// Main is the index of the entry function.
	Main int
}

// Address-space layout of the simulated machine: bytecode instruction i
// lives at CodeBase+4i, the threaded handler of opcode k at
// HandlerBase+0x40k (its dispatch branch at the end of the handler).
const (
	CodeBase    = 0x0200_0000
	HandlerBase = 0x0300_0000
	handlerSize = 0x40
	ObjBase     = 0x0400_0000
)

// codeAddr returns the simulated address of instruction i.
func codeAddr(i int) uint32 { return CodeBase + uint32(i)*4 }

// handlerAddr returns the entry address of opcode k's handler.
func handlerAddr(op Op) uint32 { return HandlerBase + uint32(op)*handlerSize }

// dispatchSite returns the address of the indirect dispatch branch at the
// end of opcode k's handler (threaded code).
func dispatchSite(op Op) uint32 { return handlerAddr(op) + handlerSize - 4 }

// Options configures a VM run.
type Options struct {
	// MaxSteps bounds execution (0 = DefaultMaxSteps).
	MaxSteps int
	// TraceDispatch records the threaded-code dispatch indirect jump for
	// every executed instruction (interpreter-style traces). Explicit
	// control transfers (calls, switches, returns) are always recorded.
	TraceDispatch bool
	// TraceCond records conditional branches.
	TraceCond bool
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 2_000_000

type object struct {
	class  int
	fields []int64
}

type frame struct {
	retPC  int
	locals []int64
	fnIdx  int
}

// VM executes a Program and collects a branch trace.
type VM struct {
	prog  *Program
	opts  Options
	stack []int64
	heap  []object
	out   trace.Trace
	gap   uint32 // instructions since the last emitted record
}

// New returns a VM for the program.
func New(p *Program, opts Options) *VM {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	return &VM{prog: p, opts: opts}
}

// Trace returns the branch trace collected so far.
func (m *VM) Trace() trace.Trace { return m.out }

func (m *VM) emit(kind trace.Kind, pc, target uint32) {
	m.out = append(m.out, trace.Record{PC: pc, Target: target, Kind: kind, Gap: m.gap + 1})
	m.gap = 0
}

func (m *VM) push(v int64) { m.stack = append(m.stack, v) }

func (m *VM) pop() (int64, error) {
	if len(m.stack) == 0 {
		return 0, fmt.Errorf("vm: stack underflow")
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v, nil
}

// Run executes the program's main function and returns its result value.
func (m *VM) Run() (int64, error) {
	p := m.prog
	if p.Main < 0 || p.Main >= len(p.Funcs) {
		return 0, fmt.Errorf("vm: invalid main function %d", p.Main)
	}
	main := p.Funcs[p.Main]
	frames := []frame{{retPC: -1, locals: make([]int64, main.Locals), fnIdx: p.Main}}
	pc := main.Entry
	steps := 0
	for {
		if steps++; steps > m.opts.MaxSteps {
			return 0, fmt.Errorf("vm: exceeded %d steps", m.opts.MaxSteps)
		}
		if pc < 0 || pc >= len(p.Code) {
			return 0, fmt.Errorf("vm: pc %d out of range", pc)
		}
		in := p.Code[pc]
		next := pc + 1
		fr := &frames[len(frames)-1]
		switch in.Op {
		case OpHalt:
			var v int64
			if len(m.stack) > 0 {
				v, _ = m.pop()
			}
			return v, nil
		case OpPush:
			m.push(int64(in.Arg))
		case OpPop:
			if _, err := m.pop(); err != nil {
				return 0, err
			}
		case OpDup:
			if len(m.stack) == 0 {
				return 0, fmt.Errorf("vm: dup on empty stack")
			}
			m.push(m.stack[len(m.stack)-1])
		case OpAdd, OpSub, OpMul, OpMod, OpLt, OpEq:
			b, err := m.pop()
			if err != nil {
				return 0, err
			}
			a, err := m.pop()
			if err != nil {
				return 0, err
			}
			switch in.Op {
			case OpAdd:
				m.push(a + b)
			case OpSub:
				m.push(a - b)
			case OpMul:
				m.push(a * b)
			case OpMod:
				if b == 0 {
					return 0, fmt.Errorf("vm: modulo by zero at pc %d", pc)
				}
				m.push(a % b)
			case OpLt:
				m.push(b2i(a < b))
			case OpEq:
				m.push(b2i(a == b))
			}
		case OpNeg:
			v, err := m.pop()
			if err != nil {
				return 0, err
			}
			m.push(-v)
		case OpNot:
			v, err := m.pop()
			if err != nil {
				return 0, err
			}
			m.push(b2i(v == 0))
		case OpLoad:
			if int(in.Arg) >= len(fr.locals) {
				return 0, fmt.Errorf("vm: load of local %d (have %d)", in.Arg, len(fr.locals))
			}
			m.push(fr.locals[in.Arg])
		case OpStore:
			v, err := m.pop()
			if err != nil {
				return 0, err
			}
			if int(in.Arg) >= len(fr.locals) {
				return 0, fmt.Errorf("vm: store to local %d (have %d)", in.Arg, len(fr.locals))
			}
			fr.locals[in.Arg] = v
		case OpJmp:
			next = int(in.Arg)
		case OpJz, OpJnz:
			v, err := m.pop()
			if err != nil {
				return 0, err
			}
			taken := (v == 0) == (in.Op == OpJz)
			if taken {
				next = int(in.Arg)
			}
			if m.opts.TraceCond {
				var tgt uint32
				if taken {
					tgt = codeAddr(int(in.Arg))
				}
				m.emit(trace.Cond, codeAddr(pc), tgt)
			}
		case OpCall:
			if int(in.Arg) < 0 || int(in.Arg) >= len(p.Funcs) {
				return 0, fmt.Errorf("vm: call to invalid function %d", in.Arg)
			}
			m.emit(trace.DirectCall, codeAddr(pc), codeAddr(p.Funcs[in.Arg].Entry))
			n, err := m.enter(&frames, int(in.Arg), next)
			if err != nil {
				return 0, err
			}
			next = n
		case OpCallFn:
			fv, err := m.pop()
			if err != nil {
				return 0, err
			}
			fi := int(fv)
			if fi < 0 || fi >= len(p.Funcs) {
				return 0, fmt.Errorf("vm: indirect call to invalid function %d", fi)
			}
			m.emit(trace.IndirectCall, codeAddr(pc), codeAddr(p.Funcs[fi].Entry))
			n, err := m.enter(&frames, fi, next)
			if err != nil {
				return 0, err
			}
			next = n
		case OpRet:
			if len(frames) == 1 {
				var v int64
				if len(m.stack) > 0 {
					v, _ = m.pop()
				}
				return v, nil
			}
			ret := frames[len(frames)-1].retPC
			frames = frames[:len(frames)-1]
			m.emit(trace.Return, codeAddr(pc), codeAddr(ret))
			next = ret
		case OpSwitch:
			if int(in.Arg) >= len(p.Tables) {
				return 0, fmt.Errorf("vm: switch table %d missing", in.Arg)
			}
			tbl := p.Tables[in.Arg]
			if len(tbl) == 0 {
				return 0, fmt.Errorf("vm: empty switch table %d", in.Arg)
			}
			v, err := m.pop()
			if err != nil {
				return 0, err
			}
			idx := int(((v % int64(len(tbl))) + int64(len(tbl))) % int64(len(tbl)))
			next = tbl[idx]
			m.emit(trace.SwitchJump, codeAddr(pc), codeAddr(next))
		case OpNew:
			if int(in.Arg) >= len(p.Classes) {
				return 0, fmt.Errorf("vm: new of unknown class %d", in.Arg)
			}
			m.heap = append(m.heap, object{
				class:  int(in.Arg),
				fields: make([]int64, p.Classes[in.Arg].Fields),
			})
			m.push(int64(len(m.heap) - 1))
		case OpGetF:
			obj, err := m.object()
			if err != nil {
				return 0, err
			}
			if int(in.Arg) >= len(obj.fields) {
				return 0, fmt.Errorf("vm: getf %d out of range", in.Arg)
			}
			m.push(obj.fields[in.Arg])
		case OpSetF:
			v, err := m.pop()
			if err != nil {
				return 0, err
			}
			obj, err := m.object()
			if err != nil {
				return 0, err
			}
			if int(in.Arg) >= len(obj.fields) {
				return 0, fmt.Errorf("vm: setf %d out of range", in.Arg)
			}
			obj.fields[in.Arg] = v
		case OpVCall:
			ref, err := m.pop()
			if err != nil {
				return 0, err
			}
			if ref < 0 || int(ref) >= len(m.heap) {
				return 0, fmt.Errorf("vm: vcall on invalid object %d", ref)
			}
			cls := p.Classes[m.heap[ref].class]
			slot := int(in.Arg)
			if slot >= len(cls.VTable) {
				return 0, fmt.Errorf("vm: class %s has no method slot %d", cls.Name, slot)
			}
			fi := cls.VTable[slot]
			m.emit(trace.VirtualCall, codeAddr(pc), codeAddr(p.Funcs[fi].Entry))
			// The receiver becomes argument 0 of the method.
			m.push(ref)
			n, err := m.enter(&frames, fi, next)
			if err != nil {
				return 0, err
			}
			next = n
		default:
			return 0, fmt.Errorf("vm: unknown opcode %d at pc %d", in.Op, pc)
		}
		if m.opts.TraceDispatch && next >= 0 && next < len(p.Code) {
			// Threaded-code dispatch: the handler of the current
			// opcode jumps indirectly to the next opcode's handler.
			m.emit(trace.IndirectJump, dispatchSite(in.Op), handlerAddr(p.Code[next].Op))
		} else {
			m.gap++
		}
		pc = next
	}
}

// enter pushes a call frame for function fi, popping its parameters from the
// stack into locals, and returns the function's entry pc.
func (m *VM) enter(frames *[]frame, fi, retPC int) (int, error) {
	if fi < 0 || fi >= len(m.prog.Funcs) {
		return 0, fmt.Errorf("vm: call to invalid function %d", fi)
	}
	if len(*frames) >= 10_000 {
		return 0, fmt.Errorf("vm: call stack overflow")
	}
	fn := m.prog.Funcs[fi]
	locals := make([]int64, fn.Locals)
	for i := fn.Params - 1; i >= 0; i-- {
		v, err := m.pop()
		if err != nil {
			return 0, fmt.Errorf("vm: missing argument %d for %s", i, fn.Name)
		}
		locals[i] = v
	}
	*frames = append(*frames, frame{retPC: retPC, locals: locals, fnIdx: fi})
	return fn.Entry, nil
}

// object pops an object reference and resolves it.
func (m *VM) object() (*object, error) {
	ref, err := m.pop()
	if err != nil {
		return nil, err
	}
	if ref < 0 || int(ref) >= len(m.heap) {
		return nil, fmt.Errorf("vm: invalid object reference %d", ref)
	}
	return &m.heap[ref], nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
