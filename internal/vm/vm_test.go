package vm

import (
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ras"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/trace"
)

func runSrc(t *testing.T, src string, opts Options) (int64, trace.Trace) {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p, opts)
	v, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, m.Trace()
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"push 2\npush 3\nadd\nret", 5},
		{"push 7\npush 3\nsub\nret", 4},
		{"push 6\npush 7\nmul\nret", 42},
		{"push 17\npush 5\nmod\nret", 2},
		{"push 9\nneg\nret", -9},
		{"push 2\npush 3\nlt\nret", 1},
		{"push 3\npush 3\nlt\nret", 0},
		{"push 3\npush 3\neq\nret", 1},
		{"push 0\nnot\nret", 1},
		{"push 5\ndup\nadd\nret", 10},
		{"push 1\npush 2\npop\nret", 1},
	}
	for _, c := range cases {
		v, _ := runSrc(t, "func main\n"+c.body, Options{})
		if v != c.want {
			t.Errorf("%q = %d, want %d", c.body, v, c.want)
		}
	}
}

func TestLocalsAndControl(t *testing.T) {
	src := `
func main locals=2
  push 0
  store 1
  push 5
  store 0
loop:
  load 0
  jz done
  load 1
  load 0
  add
  store 1
  load 0
  push 1
  sub
  store 0
  jmp loop
done:
  load 1
  ret
`
	v, _ := runSrc(t, src, Options{})
	if v != 15 { // 5+4+3+2+1
		t.Errorf("sum = %d, want 15", v)
	}
}

func TestFibSample(t *testing.T) {
	v, tr, err := RunSample("fib", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1597 { // fib(17)
		t.Errorf("fib(17) = %d, want 1597", v)
	}
	calls := tr.CountKind(trace.DirectCall)
	rets := tr.CountKind(trace.Return)
	if calls == 0 || rets == 0 {
		t.Fatalf("fib trace: %d calls, %d returns", calls, rets)
	}
	// Every traced return must be perfectly predicted by a deep RAS: the
	// §2 premise on a real program.
	res := ras.Simulate(tr, 64)
	if res.Misses != 0 {
		t.Errorf("RAS missed %d/%d returns on fib", res.Misses, res.Returns)
	}
}

func TestTokensSampleIsSwitchWorkload(t *testing.T) {
	_, tr, err := RunSample("tokens", Options{})
	if err != nil {
		t.Fatal(err)
	}
	switches := tr.CountKind(trace.SwitchJump)
	if switches < 3000 {
		t.Fatalf("tokens trace has only %d switch records", switches)
	}
	targets := map[uint32]bool{}
	site := uint32(0)
	for _, r := range tr {
		if r.Kind == trace.SwitchJump {
			targets[r.Target] = true
			if site == 0 {
				site = r.PC
			} else if r.PC != site {
				t.Fatal("tokens should have a single switch site")
			}
		}
	}
	if len(targets) != 8 {
		t.Errorf("switch reaches %d targets, want 8", len(targets))
	}
}

func TestShapesSampleIsVCallWorkload(t *testing.T) {
	_, tr, err := RunSample("shapes", Options{})
	if err != nil {
		t.Fatal(err)
	}
	vcalls := tr.CountKind(trace.VirtualCall)
	if vcalls != 2000 {
		t.Fatalf("shapes trace has %d vcalls, want 2000", vcalls)
	}
	// The class mix cycles with period 3: a BTB suffers, a p>=1 two-level
	// predictor learns it (the paper's whole point, on a real program).
	ind := tr.Indirect()
	btb := sim.MissRate(core.NewBTB(nil, core.UpdateTwoMiss), ind)
	two := sim.MissRate(core.MustTwoLevel(core.Config{PathLength: 2, Precision: core.AutoPrecision}), ind)
	if two >= btb/2 {
		t.Errorf("two-level (%.1f%%) should be far below BTB (%.1f%%) on the cyclic vcall mix", two, btb)
	}
}

func TestDispatchSampleUsesIndirectCalls(t *testing.T) {
	_, tr, err := RunSample("dispatch", Options{})
	if err != nil {
		t.Fatal(err)
	}
	icalls := tr.CountKind(trace.IndirectCall)
	if icalls != 3000 {
		t.Fatalf("dispatch trace has %d indirect calls, want 3000", icalls)
	}
	targets := map[uint32]bool{}
	for _, r := range tr {
		if r.Kind == trace.IndirectCall {
			targets[r.Target] = true
		}
	}
	if len(targets) != 3 {
		t.Errorf("indirect calls reach %d targets, want 3", len(targets))
	}
}

func TestTraceDispatchMode(t *testing.T) {
	_, tr, err := RunSample("tokens", Options{TraceDispatch: true})
	if err != nil {
		t.Fatal(err)
	}
	jumps := 0
	for _, r := range tr {
		if r.Kind == trace.IndirectJump {
			jumps++
			if r.PC < HandlerBase || r.Target < HandlerBase {
				t.Fatalf("dispatch record outside handler space: %+v", r)
			}
		}
	}
	if jumps < 10000 {
		t.Errorf("dispatch tracing produced only %d records", jumps)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("invalid dispatch trace: %v", err)
	}
	// Threaded dispatch is the hardest single-site-style workload for a
	// BTB; a path-based predictor does far better (the paper's
	// interpreter story).
	ind := tr.Indirect()
	btb := sim.MissRate(core.NewBTB(nil, core.UpdateTwoMiss), ind)
	two := sim.MissRate(core.MustTwoLevel(core.Config{PathLength: 6, Precision: core.AutoPrecision}), ind)
	if two >= btb {
		t.Errorf("two-level (%.1f%%) should beat BTB (%.1f%%) on dispatch trace", two, btb)
	}
}

func TestTraceCondMode(t *testing.T) {
	_, tr, err := RunSample("fib", Options{TraceCond: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.CountKind(trace.Cond) == 0 {
		t.Error("TraceCond produced no conditional records")
	}
}

func TestDeterminism(t *testing.T) {
	_, a, err := RunSample("shapes", Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSample("shapes", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestRunSampleUnknown(t *testing.T) {
	if _, _, err := RunSample("nonesuch", Options{}); err == nil {
		t.Error("unknown sample accepted")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"underflow", "func main\nadd\nret", "underflow"},
		{"divzero", "func main\npush 1\npush 0\nmod\nret", "modulo"},
		{"badlocal", "func main\nload 3\nret", "local"},
		{"badstore", "func main\npush 1\nstore 9\nret", "local"},
		{"dupempty", "func main\ndup\nret", "dup"},
		{"badfn", "func main\npush 99\ncallfn\nret", "invalid function"},
		{"badobj", "func main\npush 42\ngetf 0\nret", "object"},
		{"vcallbad", "func main\npush 7\nvcall 0\nret", "invalid object"},
		{"steps", "func main\nloop:\njmp loop", "steps"},
	}
	for _, c := range cases {
		p, err := Assemble(c.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", c.name, err)
		}
		m := New(p, Options{MaxSteps: 10000})
		if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.frag)
		}
	}
}

func TestObjects(t *testing.T) {
	src := `
class Pair fields=2 vtable=Pair.sum
func Pair.sum params=1
  load 0
  getf 0
  load 0
  getf 1
  add
  ret
func main locals=1
  new Pair
  store 0
  load 0
  push 11
  setf 0
  load 0
  push 31
  setf 1
  load 0
  vcall 0
  ret
`
	v, tr := runSrc(t, src, Options{})
	if v != 42 {
		t.Errorf("Pair.sum = %d, want 42", v)
	}
	if tr.CountKind(trace.VirtualCall) != 1 {
		t.Errorf("vcall count = %d", tr.CountKind(trace.VirtualCall))
	}
}

func TestCallStackOverflow(t *testing.T) {
	src := "func main\ncall main\nret"
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, Options{MaxSteps: 1_000_000})
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("infinite recursion error = %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpVCall.String() != "vcall" || OpPush.String() != "push" {
		t.Error("op names")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op stringer")
	}
}
