package workload

import (
	"math"
	"testing"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
)

// TestCalibrationBTB pins each benchmark's unconstrained BTB-2bc
// misprediction rate to the paper's Table A-1 anchor within a tolerance
// band. The bands are wide (the substrate is synthetic) but tight enough
// that the benchmarks keep their relative difficulty ordering.
func TestCalibrationBTB(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full traces")
	}
	const tolerance = 10.0 // percentage points
	for _, cfg := range Suite() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			tr := cfg.MustGenerate(DefaultBranches)
			got := sim.MissRate(core.NewBTB(nil, core.UpdateTwoMiss), tr)
			want := cfg.Meta.PaperBTB
			t.Logf("%-8s btb-2bc: got %6.2f%%  paper %6.2f%%", cfg.Name, got, want)
			if math.Abs(got-want) > tolerance {
				t.Errorf("%s: BTB-2bc %.2f%%, paper %.2f%% (tolerance %.0f)", cfg.Name, got, want, tolerance)
			}
		})
	}
}

// TestCalibrationShape pins the headline shape results on the AVG group
// (Figure 9): an unconstrained BTB around 25%, a two-level minimum in the
// single digits at a small path length, better than a threefold improvement
// over the BTB, and a rising tail at long path lengths.
func TestCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full traces")
	}
	var avg []Config
	for _, c := range Suite() {
		if c.Meta.InstrPerIndirect <= 200 {
			avg = append(avg, c)
		}
	}
	if len(avg) != 13 {
		t.Fatalf("AVG group has %d benchmarks, want 13", len(avg))
	}
	paths := []int{0, 1, 2, 3, 6, 12, 18}
	rates := make(map[int]float64)
	for _, c := range avg {
		tr := c.MustGenerate(DefaultBranches)
		for _, p := range paths {
			kind := "exact"
			if p == 0 {
				kind = "unbounded"
			}
			pred := core.MustTwoLevel(core.Config{PathLength: p, Precision: 0, TableKind: kind})
			rates[p] += sim.MissRate(pred, tr) / float64(len(avg))
		}
	}
	for _, p := range paths {
		t.Logf("p=%-2d AVG %.2f%%", p, rates[p])
	}
	if rates[0] < 18 || rates[0] > 32 {
		t.Errorf("AVG BTB (p=0) = %.2f%%, paper 24.9%%", rates[0])
	}
	best := math.Inf(1)
	for _, p := range []int{2, 3, 6} {
		best = math.Min(best, rates[p])
	}
	if best > 9.5 {
		t.Errorf("best two-level AVG = %.2f%%, want single digits (paper 5.8%%)", best)
	}
	if rates[0]/best < 2.5 {
		t.Errorf("two-level improvement only %.1fx over BTB, paper reports >3x", rates[0]/best)
	}
	if rates[2] >= rates[0]/2 {
		t.Errorf("p=2 (%.2f%%) should be far below BTB (%.2f%%)", rates[2], rates[0])
	}
	if rates[18] <= rates[6] {
		t.Errorf("long paths should pay a warm-up cost: p=18 %.2f%% vs p=6 %.2f%%", rates[18], rates[6])
	}
}

// TestCalibrationGlobalHistory pins the Figure 5 headline: a global history
// beats per-branch histories on the AVG group at p=8.
func TestCalibrationGlobalHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs full traces")
	}
	var global, perBranch float64
	n := 0
	for _, c := range Suite() {
		if c.Meta.InstrPerIndirect > 200 {
			continue
		}
		tr := c.MustGenerate(DefaultBranches / 2)
		g := core.MustTwoLevel(core.Config{PathLength: 8, HistShare: 32, Precision: 0, TableKind: "exact"})
		pb := core.MustTwoLevel(core.Config{PathLength: 8, HistShare: 2, Precision: 0, TableKind: "exact"})
		global += sim.MissRate(g, tr)
		perBranch += sim.MissRate(pb, tr)
		n++
	}
	global /= float64(n)
	perBranch /= float64(n)
	t.Logf("p=8: global %.2f%%, per-branch %.2f%% (paper: 6.0%% vs 9.4%%)", global, perBranch)
	if global >= perBranch {
		t.Errorf("global history (%.2f%%) must beat per-branch (%.2f%%)", global, perBranch)
	}
}
