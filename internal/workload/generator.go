// Package workload generates synthetic indirect-branch traces with the
// statistical structure the paper's predictors exploit. The paper traced
// real SPECint95 and C++ binaries under the shade simulator; this package
// replaces those traces with a "loop corpus" program model:
//
//   - A program is a set of indirect branch *sites*, clustered in the
//     address space like functions in modules, each with a small set of
//     possible targets (virtual function implementations, switch cases,
//     function pointees).
//   - Control flow consists of *loops*: short cyclic sequences of
//     (site, target) steps, as produced by iterating over homogeneous or
//     patterned data structures. A loop executes for a geometrically
//     distributed number of iterations, then control transfers to another
//     loop.
//   - Loops belong to *phases*; the active phase changes periodically,
//     modelling program phase behaviour (parse, analyse, emit, …).
//   - Some sites are *data-dependent*: their target is drawn per visit from
//     a biased distribution, independent of history (input-driven
//     dispatch).
//   - A small *noise* rate perturbs otherwise deterministic steps.
//
// These five ingredients produce exactly the phenomena the paper measures:
// per-site dominant targets (BTB-2bc beats BTB), short-period path
// regularities (two-level predictors win, with diminishing returns in p),
// longer-period regularities (long paths win given table capacity), warm-up
// and phase-change costs (long paths lose on small tables; hybrids win), and
// inter-branch correlation that only a global history can see.
package workload

import (
	"fmt"
	"math/rand/v2"

	"github.com/oocsb/ibp/internal/trace"
)

// Config describes one synthetic benchmark. See Suite for the 17
// paper-calibrated instances.
type Config struct {
	// Name identifies the benchmark (paper benchmark names).
	Name string
	// Meta carries the paper's Tables 1–2 characteristics for reporting.
	Meta Meta
	// Seed makes the benchmark bit-reproducible.
	Seed uint64

	// Sites is the number of static indirect branch sites.
	Sites int
	// Clusters is the number of address-space clusters the sites are
	// spread over (module/function locality; drives the history-sharing
	// sweep of Figure 5).
	Clusters int
	// TargetsPerSite is the mean number of distinct targets per site
	// (minimum 1; distribution is 1 + geometric).
	TargetsPerSite float64
	// Loops is the number of distinct loops in the corpus.
	Loops int
	// LoopLenMax bounds loop lengths; lengths are drawn 1..LoopLenMax,
	// biased short (the paper finds most regularities have period < 6).
	LoopLenMax int
	// LoopLenMean is the mean of the (geometric) loop length
	// distribution; 0 selects the default of 3.2 steps.
	LoopLenMean float64
	// MeanRepeats is the mean number of consecutive iterations a loop
	// runs per activation.
	MeanRepeats float64
	// Phases is the number of program phases (1 = no phase behaviour).
	Phases int
	// PhaseLen is the number of indirect branches per phase segment.
	PhaseLen int
	// Polymorphism is the probability that a loop's use of a site picks a
	// non-dominant target (sites shared across loops with different
	// targets are what defeats a BTB).
	Polymorphism float64
	// SharedMotifs is the fraction of loop content drawn from a shared
	// pool of short fixed (site, target) sequences — common helper-call
	// idioms. Steps following a shared motif are ambiguous for short
	// path lengths (the motif hides which loop is running) and resolve
	// under longer paths, producing the paper's path-length curve.
	SharedMotifs float64
	// SiteReuse is the probability that a loop step revisits a site
	// already used earlier in the same loop with a different target, so
	// the site cycles through targets within one iteration: near-worst
	// case for a BTB, trivially learnable for a path-based predictor
	// (the m88ksim pattern).
	SiteReuse float64
	// RandomSiteFrac is the fraction of sites that are data-dependent.
	RandomSiteFrac float64
	// Dominance is the probability a data-dependent site takes its
	// dominant target on a visit.
	Dominance float64
	// Noise is the probability a deterministic step is perturbed to a
	// random alternative target.
	Noise float64

	// InstrPerIndirect is the mean instruction distance between indirect
	// branches (Tables 1–2).
	InstrPerIndirect int
	// CondPerIndirect is the mean number of conditional branches per
	// indirect branch. Emission is capped at MaxCondRecords per indirect;
	// the instruction counts remain exact.
	CondPerIndirect float64
	// VCallFrac is the fraction of sites that are virtual calls; the
	// remainder split between switch jumps, indirect calls and jumps.
	VCallFrac float64
	// EmitReturns interleaves properly nested call/return records so the
	// return address stack premise (§2) can be exercised.
	EmitReturns bool
}

// MaxCondRecords caps how many conditional-branch records are emitted per
// indirect branch (the AVG-infreq benchmarks execute hundreds to thousands;
// emitting them all would dwarf the trace without affecting indirect
// prediction).
const MaxCondRecords = 32

// DefaultBranches is the default trace length in indirect branches; the
// paper uses up to 6M, which remains available by passing a larger n.
const DefaultBranches = 80_000

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sites <= 0:
		return fmt.Errorf("workload %s: Sites must be positive", c.Name)
	case c.Clusters <= 0 || c.Clusters > c.Sites:
		return fmt.Errorf("workload %s: Clusters %d out of range [1,%d]", c.Name, c.Clusters, c.Sites)
	case c.TargetsPerSite < 1:
		return fmt.Errorf("workload %s: TargetsPerSite %v < 1", c.Name, c.TargetsPerSite)
	case c.Loops <= 0:
		return fmt.Errorf("workload %s: Loops must be positive", c.Name)
	case c.LoopLenMax <= 0:
		return fmt.Errorf("workload %s: LoopLenMax must be positive", c.Name)
	case c.MeanRepeats < 1:
		return fmt.Errorf("workload %s: MeanRepeats %v < 1", c.Name, c.MeanRepeats)
	case c.Phases <= 0:
		return fmt.Errorf("workload %s: Phases must be positive", c.Name)
	case c.Phases > 1 && c.PhaseLen <= 0:
		return fmt.Errorf("workload %s: PhaseLen must be positive with %d phases", c.Name, c.Phases)
	case c.Polymorphism < 0 || c.Polymorphism > 1:
		return fmt.Errorf("workload %s: Polymorphism %v out of [0,1]", c.Name, c.Polymorphism)
	case c.SharedMotifs < 0 || c.SharedMotifs > 1:
		return fmt.Errorf("workload %s: SharedMotifs %v out of [0,1]", c.Name, c.SharedMotifs)
	case c.SiteReuse < 0 || c.SiteReuse > 1:
		return fmt.Errorf("workload %s: SiteReuse %v out of [0,1]", c.Name, c.SiteReuse)
	case c.RandomSiteFrac < 0 || c.RandomSiteFrac > 1:
		return fmt.Errorf("workload %s: RandomSiteFrac %v out of [0,1]", c.Name, c.RandomSiteFrac)
	case c.Dominance < 0 || c.Dominance > 1:
		return fmt.Errorf("workload %s: Dominance %v out of [0,1]", c.Name, c.Dominance)
	case c.Noise < 0 || c.Noise > 1:
		return fmt.Errorf("workload %s: Noise %v out of [0,1]", c.Name, c.Noise)
	case c.InstrPerIndirect < 1:
		return fmt.Errorf("workload %s: InstrPerIndirect must be positive", c.Name)
	case c.CondPerIndirect < 0:
		return fmt.Errorf("workload %s: CondPerIndirect negative", c.Name)
	case c.VCallFrac < 0 || c.VCallFrac > 1:
		return fmt.Errorf("workload %s: VCallFrac %v out of [0,1]", c.Name, c.VCallFrac)
	}
	return nil
}

// site is one static indirect branch.
type site struct {
	pc      uint32
	kind    trace.Kind
	targets []uint32
	random  bool // data-dependent: target drawn per visit
	// state is the current target index of a data-dependent site. The
	// target evolves as a sticky Markov chain over the site's small
	// target set: unpredictable from history (the data decides), but the
	// values it injects into histories recur, as real data-driven
	// dispatch does.
	state int
}

// step is one position in a loop body.
type step struct {
	site int
	// tgt indexes the site's target set; -1 means draw per visit
	// (data-dependent site).
	tgt int
}

type loop struct {
	steps []step
	home  int // home cluster (call locality)
	// succ are the loops control can transfer to after this one. Real
	// programs transfer between loops along a sparse static structure
	// (the caller's loop), which is what lets long-path predictors learn
	// boundary patterns.
	succ []int
}

// program is a fully materialized benchmark: sites, loops and phases, ready
// to emit a trace of any length.
type program struct {
	cfg    Config
	rng    *rand.Rand
	sites  []site
	motifs []motif
	loops  []loop
	phases [][]int // loop indices per phase
}

// motif is a shared fixed (site, target) idiom plus its continuation site: a
// branch site that many loops execute right after the motif, each with its
// own target. Predicting the continuation requires seeing past the motif —
// the paper's short-path ambiguity in its purest form.
type motif struct {
	steps  []step
	csites [2]int
}

// Address space layout (word-aligned, well under 2^31 so s=31 is global):
// clusters of branch sites from 0x0010_0000, target code from 0x0080_0000.
const (
	siteBase    = 0x0010_0000
	clusterSize = 0x4000 // 16 KiB between cluster bases
	targetBase  = 0x0080_0000
	targetSpan  = 0x0040_0000 // 4 MiB of callee code
)

// build materializes the program structure from the seed.
func build(cfg Config) (*program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &program{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15)),
	}
	p.buildSites()
	p.buildMotifs()
	p.buildLoops()
	p.buildPhases()
	p.buildSuccessors()
	return p, nil
}

func (p *program) buildSites() {
	cfg := p.cfg
	p.sites = make([]site, cfg.Sites)
	perCluster := (cfg.Sites + cfg.Clusters - 1) / cfg.Clusters
	used := make(map[uint32]bool)
	// Targets are drawn from per-cluster pools, so different sites often
	// share targets (common handlers, shared methods). Target sharing is
	// what makes one-deep histories ambiguous in real programs: seeing
	// "the last branch went to F" rarely identifies the calling context.
	pools := make([][]uint32, cfg.Clusters)
	for c := range pools {
		n := int(float64(perCluster)*cfg.TargetsPerSite/2.5) + 3
		pool := make([]uint32, n)
		for j := range pool {
			// Random word-aligned callee addresses: low-order
			// bits carry entropy, as real function entry points
			// do. This is what makes the paper's low-order bit
			// selection (§4.1) work.
			pool[j] = uint32(targetBase + p.rng.IntN(targetSpan/4)*4)
		}
		pools[c] = pool
	}
	// Data-dependent sites are clustered (the input-driven parts of a
	// program are whole modules, not scattered branches), so their
	// history pollution stays confined to the loops that visit them.
	nRandom := int(cfg.RandomSiteFrac*float64(cfg.Sites) + 0.5)
	for i := range p.sites {
		cluster := i / perCluster
		// Spread sites pseudo-randomly within their cluster.
		pc := uint32(siteBase + cluster*clusterSize + p.rng.IntN(clusterSize/4)*4)
		for used[pc] {
			pc += 4
		}
		used[pc] = true
		random := i < nRandom
		nt := 1 + sampleGeometric(p.rng, cfg.TargetsPerSite-1)
		if random {
			// Data-dependent sites dispatch between two targets
			// (think: leaf vs. interior node). Two values maximize
			// the unpredictability-per-pattern-dilution ratio, so
			// the floor they create stays nearly flat in path
			// length, as the paper's floors do.
			nt = 2
		}
		pool := pools[cluster]
		if nt > len(pool) {
			nt = len(pool)
		}
		targets := make([]uint32, 0, nt)
		for len(targets) < nt {
			cand := pool[p.rng.IntN(len(pool))]
			dup := false
			for _, t := range targets {
				if t == cand {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, cand)
			}
		}
		p.sites[i] = site{
			pc:      pc,
			kind:    p.siteKind(i),
			targets: targets,
			random:  random,
		}
	}
}

// siteKind assigns branch kinds per the configured virtual-call fraction,
// splitting the remainder among switches, indirect calls and jumps.
func (p *program) siteKind(i int) trace.Kind {
	if p.rng.Float64() < p.cfg.VCallFrac {
		return trace.VirtualCall
	}
	switch p.rng.IntN(3) {
	case 0:
		return trace.SwitchJump
	case 1:
		return trace.IndirectCall
	default:
		return trace.IndirectJump
	}
}

// buildMotifs creates the shared pool of fixed short idioms, a few per
// cluster (think: the call sequence of a common helper).
func (p *program) buildMotifs() {
	cfg := p.cfg
	// Each cluster has a couple of hot dispatch sites every motif of the
	// cluster continues through (like an interpreter's loop head): the
	// same site is reached from many contexts, each wanting a different
	// target, which concentrates exactly the ambiguity path-based
	// prediction resolves.
	dispatch := make([][2]int, cfg.Clusters)
	for c := range dispatch {
		dispatch[c] = [2]int{p.pickSite(c, 1.0), p.pickSite(c, 1.0)}
	}
	nMotifs := cfg.Loops/2 + 1
	p.motifs = make([]motif, nMotifs)
	for mi := range p.motifs {
		cluster := mi % cfg.Clusters
		length := 2 + p.rng.IntN(5) // 2–6 steps: continuations resolve at p = len+1
		m := make([]step, 0, length)
		for j := 0; j < length; j++ {
			si := p.pickSite(cluster, 1.0)
			s := &p.sites[si]
			st := step{site: si}
			if s.random {
				st.tgt = -1
			} else {
				st.tgt = p.rng.IntN(len(s.targets))
			}
			m = append(m, st)
		}
		p.motifs[mi] = motif{steps: m, csites: dispatch[cluster]}
	}
}

// pickSite chooses a site, from the given cluster with probability affinity,
// otherwise from anywhere.
func (p *program) pickSite(cluster int, affinity float64) int {
	cfg := p.cfg
	perCluster := (cfg.Sites + cfg.Clusters - 1) / cfg.Clusters
	if p.rng.Float64() >= affinity {
		cluster = p.rng.IntN(cfg.Clusters)
	}
	lo := cluster * perCluster
	hi := lo + perCluster
	if hi > cfg.Sites {
		hi = cfg.Sites
	}
	if lo >= hi {
		return p.rng.IntN(cfg.Sites)
	}
	return lo + p.rng.IntN(hi-lo)
}

func (p *program) buildLoops() {
	cfg := p.cfg
	p.loops = make([]loop, cfg.Loops)
	for li := range p.loops {
		length := 1 + p.sampleLoopLen()
		steps := make([]step, 0, length)
		// Loops are cluster-affine: most steps use sites from a home
		// cluster (call locality), occasionally crossing clusters.
		home := p.rng.IntN(cfg.Clusters)
		for len(steps) < length {
			// Shared motif block: a fixed idiom common to many
			// loops, followed by its continuation site with a
			// loop-specific target — only predictable from history
			// deeper than the motif.
			if cfg.SharedMotifs > 0 && p.rng.Float64() < cfg.SharedMotifs {
				m := p.motifs[p.pickMotif(home)]
				steps = append(steps, m.steps...)
				for _, csite := range m.csites {
					cs := &p.sites[csite]
					st := step{site: csite}
					if cs.random {
						st.tgt = -1
					} else {
						st.tgt = p.rng.IntN(len(cs.targets))
					}
					steps = append(steps, st)
				}
				continue
			}
			// Within-loop site reuse: revisit an earlier site with
			// a different target so it cycles within one iteration.
			if cfg.SiteReuse > 0 && len(steps) > 0 && p.rng.Float64() < cfg.SiteReuse {
				prev := steps[p.rng.IntN(len(steps))]
				if prev.tgt >= 0 {
					s := &p.sites[prev.site]
					if nt, ok := p.unusedTarget(steps, prev.site, len(s.targets)); ok {
						// The site now cycles through one
						// more distinct target per
						// iteration: each extra target
						// defeats the BTB's hysteresis a
						// little more.
						steps = append(steps, step{site: prev.site, tgt: nt})
						continue
					}
				}
			}
			si := p.pickSite(home, 0.8)
			st := step{site: si}
			s := &p.sites[si]
			switch {
			case s.random:
				st.tgt = -1
			case p.rng.Float64() < cfg.Polymorphism:
				st.tgt = p.rng.IntN(len(s.targets))
			default:
				st.tgt = 0 // the site's dominant target
			}
			steps = append(steps, st)
		}
		p.loops[li] = loop{steps: steps, home: home}
	}
}

// unusedTarget returns a target index of site not yet used by any step in
// steps, or (if all are used) one differing from the site's last appearance.
func (p *program) unusedTarget(steps []step, site, nTargets int) (int, bool) {
	if nTargets <= 1 {
		return 0, false
	}
	used := make([]bool, nTargets)
	last := -1
	for _, st := range steps {
		if st.site == site && st.tgt >= 0 {
			used[st.tgt] = true
			last = st.tgt
		}
	}
	free := make([]int, 0, nTargets)
	for i, u := range used {
		if !u {
			free = append(free, i)
		}
	}
	if len(free) > 0 {
		return free[p.rng.IntN(len(free))], true
	}
	nt := p.rng.IntN(nTargets - 1)
	if nt >= last {
		nt++
	}
	return nt, true
}

// pickMotif selects a motif, preferring those of the loop's home cluster.
func (p *program) pickMotif(home int) int {
	n := len(p.motifs)
	for tries := 0; tries < 4; tries++ {
		mi := p.rng.IntN(n)
		if mi%p.cfg.Clusters == home {
			return mi
		}
	}
	return p.rng.IntN(n)
}

// buildSuccessors wires the sparse loop-transition graph: each loop gets a
// few successor loops within its phase, biased toward its home cluster
// (call locality). Sparse, static successors make boundary-spanning history
// patterns recur, which is what real call structure does.
func (p *program) buildSuccessors() {
	for ph := range p.phases {
		members := p.phases[ph]
		if len(members) == 0 {
			continue
		}
		for _, li := range members {
			n := 2 + p.rng.IntN(2) // 2–3 successors
			if n > len(members) {
				n = len(members)
			}
			succ := make([]int, 0, n)
			for len(succ) < n {
				cand := members[p.rng.IntN(len(members))]
				// Prefer same-cluster successors: shared sites
				// across temporally adjacent loops are what
				// defeats a BTB.
				if p.loops[cand].home != p.loops[li].home && p.rng.Float64() < 0.6 {
					continue
				}
				dup := false
				for _, s := range succ {
					if s == cand {
						dup = true
						break
					}
				}
				if !dup || len(members) <= n {
					succ = append(succ, cand)
				}
			}
			p.loops[li].succ = succ
		}
	}
}

// sampleLoopLen draws a loop length in [0, LoopLenMax), biased short: most
// regularities in real traces have a period below six (§3.2.3).
func (p *program) sampleLoopLen() int {
	max := p.cfg.LoopLenMax
	mean := p.cfg.LoopLenMean
	if mean <= 0 {
		mean = 2.2
	} else if mean > 1 {
		mean-- // account for the +1 applied by the caller
	}
	n := sampleGeometric(p.rng, mean)
	if n >= max {
		n = p.rng.IntN(max)
	}
	return n
}

func (p *program) buildPhases() {
	cfg := p.cfg
	p.phases = make([][]int, cfg.Phases)
	for li := range p.loops {
		// Phases are cluster-aligned: a phase works within a group of
		// modules, so the loops interleaving at any moment share
		// clusters — and hence sites and motifs. That interleaving is
		// what turns static target ambiguity into dynamic
		// mispredictions.
		ph := p.loops[li].home % cfg.Phases
		p.phases[ph] = append(p.phases[ph], li)
	}
	// Guard against empty phases (fewer clusters than phases): fold them
	// away by borrowing from the next non-empty phase.
	for ph := range p.phases {
		if len(p.phases[ph]) == 0 {
			src := p.phases[(ph+1)%cfg.Phases]
			for len(src) == 0 {
				src = p.phases[p.rng.IntN(cfg.Phases)]
			}
			p.phases[ph] = src
		}
	}
}

// sampleGeometric draws a geometric variate with the given mean (>= 0).
func sampleGeometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// P(stop) per trial q = 1/(mean+1) gives E[X] = mean.
	q := 1 / (mean + 1)
	n := 0
	for rng.Float64() >= q {
		n++
		if n > 1<<16 {
			break
		}
	}
	return n
}

// zipfPick picks an index in [0,n) with weight 1/(i+1) (hot loops dominate,
// matching the skewed site-coverage of Tables 1–2).
func zipfPick(rng *rand.Rand, n int) int {
	if n == 1 {
		return 0
	}
	// Inverse-CDF over harmonic weights via rejection-free cumulative
	// scan; n is small (loops per phase), so a linear scan is fine.
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	x := rng.Float64() * total
	for i := 0; i < n; i++ {
		x -= 1 / float64(i+1)
		if x <= 0 {
			return i
		}
	}
	return n - 1
}

// Generate produces a trace containing n indirect branches (plus conditional
// and return records as configured). The same Config and n always produce
// the same trace.
func (c Config) Generate(n int) (trace.Trace, error) {
	p, err := build(c)
	if err != nil {
		return nil, err
	}
	return p.emit(n), nil
}

// MustGenerate is Generate for statically-known configurations.
func (c Config) MustGenerate(n int) trace.Trace {
	tr, err := c.Generate(n)
	if err != nil {
		panic(err)
	}
	return tr
}

// emitter state for call/return pairing.
type callFrame struct {
	callee uint32 // target of the call (the callee entry point)
	ret    uint32 // fall-through return address
}

func (p *program) emit(n int) trace.Trace {
	cfg := p.cfg
	est := n
	if cfg.CondPerIndirect > 0 {
		extra := cfg.CondPerIndirect
		if extra > MaxCondRecords {
			extra = MaxCondRecords
		}
		est += int(float64(n) * extra)
	}
	out := make(trace.Trace, 0, est)
	var stack []callFrame

	emitted := 0
	phase := 0
	inPhase := 0
	li := -1
	for emitted < n {
		loops := p.phases[phase%len(p.phases)]
		if len(loops) == 0 {
			phase++
			continue
		}
		if li < 0 {
			// Phase entry: start from a hot loop of the phase.
			li = loops[zipfPick(p.rng, len(loops))]
		}
		repeats := 1 + sampleGeometric(p.rng, cfg.MeanRepeats-1)
		for r := 0; r < repeats && emitted < n; r++ {
			for _, st := range p.loops[li].steps {
				if emitted >= n {
					break
				}
				out = p.emitStep(out, st, &stack)
				emitted++
				inPhase++
				if cfg.Phases > 1 && inPhase >= cfg.PhaseLen {
					inPhase = 0
					phase++
					li = -1
					r = repeats // leave the loop activation too
				}
			}
			if li < 0 {
				break
			}
		}
		if li >= 0 {
			// Transfer along the sparse successor graph.
			succ := p.loops[li].succ
			li = succ[p.rng.IntN(len(succ))]
		}
	}
	// Unwind any remaining call frames so call/return records pair up.
	if cfg.EmitReturns {
		for len(stack) > 0 {
			out = p.emitReturn(out, &stack)
		}
	}
	return out
}

// emitStep appends the conditional, gap and indirect records for one loop
// step, plus call/return bookkeeping.
func (p *program) emitStep(out trace.Trace, st step, stack *[]callFrame) trace.Trace {
	cfg := p.cfg
	s := &p.sites[st.site]

	// Resolve the target.
	ti := st.tgt
	switch {
	case ti < 0: // data-dependent site: sticky Markov walk
		if len(s.targets) > 1 && p.rng.Float64() >= cfg.Dominance {
			next := p.rng.IntN(len(s.targets) - 1)
			if next >= s.state {
				next++
			}
			s.state = next
		}
		ti = s.state
	case cfg.Noise > 0 && len(s.targets) > 1 && p.rng.Float64() < cfg.Noise:
		ti = p.rng.IntN(len(s.targets))
	}
	target := s.targets[ti]

	// Instruction budget for this step, split across the conditional
	// records and the indirect branch itself.
	total := 1 + p.rng.IntN(2*cfg.InstrPerIndirect-1) // mean ≈ InstrPerIndirect
	conds := sampleConds(p.rng, cfg.CondPerIndirect)
	if conds > MaxCondRecords {
		conds = MaxCondRecords
	}
	condGap := 0
	if conds > 0 {
		condGap = total / (conds + 1)
		if condGap == 0 {
			condGap = 1
		}
	}
	spent := 0
	for i := 0; i < conds; i++ {
		cpc := s.pc - uint32(4*(conds-i)) // conditionals precede the branch
		var ct uint32
		if p.rng.Float64() < 0.6 { // taken
			// A conditional branch has one static taken target;
			// derive it from the branch address so replays of the
			// same site repeat the same target.
			ct = cpc + 8 + (cpc>>2)&0x3C
		}
		out = append(out, trace.Record{PC: cpc, Target: ct, Kind: trace.Cond, Gap: uint32(condGap)})
		spent += condGap
	}
	gap := total - spent
	if gap < 1 {
		gap = 1
	}

	// Pop pending returns before the new branch. The pop probability
	// grows with stack depth, so the call depth mean-reverts to a
	// shallow equilibrium and a modest hardware return stack suffices.
	if cfg.EmitReturns {
		for len(*stack) > 0 && p.rng.Float64() < float64(len(*stack))/float64(len(*stack)+8) {
			out = p.emitReturn(out, stack)
		}
	}
	out = append(out, trace.Record{PC: s.pc, Target: target, Kind: s.kind, Gap: uint32(gap)})
	if cfg.EmitReturns && (s.kind == trace.VirtualCall || s.kind == trace.IndirectCall) {
		*stack = append(*stack, callFrame{callee: target, ret: s.pc + 4})
	}
	return out
}

// emitReturn pops the innermost call frame and appends its return record.
// The return instruction lives in the callee, at a fixed offset past its
// entry point.
func (p *program) emitReturn(out trace.Trace, stack *[]callFrame) trace.Trace {
	fr := (*stack)[len(*stack)-1]
	*stack = (*stack)[:len(*stack)-1]
	return append(out, trace.Record{
		PC:     fr.callee + 0x1C,
		Target: fr.ret,
		Kind:   trace.Return,
		Gap:    uint32(1 + p.rng.IntN(8)),
	})
}

// sampleConds draws the number of conditional records for one step with the
// given mean rate.
func sampleConds(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	n := int(rate)
	if rng.Float64() < rate-float64(n) {
		n++
	}
	return n
}
