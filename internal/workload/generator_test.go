package workload

import (
	"math"
	"testing"

	"github.com/oocsb/ibp/internal/ras"
	"github.com/oocsb/ibp/internal/trace"
)

// small returns a fast-to-generate config for structural tests.
func small() Config {
	return Config{
		Name: "test", Seed: 42,
		Sites: 40, Clusters: 4, TargetsPerSite: 3,
		Loops: 20, LoopLenMax: 10, MeanRepeats: 3,
		Phases: 2, PhaseLen: 1000,
		Polymorphism: 0.5, SharedMotifs: 0.3, SiteReuse: 0.3,
		RandomSiteFrac: 0.1, Dominance: 0.5, Noise: 0.01,
		InstrPerIndirect: 50, CondPerIndirect: 5, VCallFrac: 0.6,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := small()
	a := cfg.MustGenerate(5000)
	b := cfg.MustGenerate(5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c := cfg2.MustGenerate(5000)
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValid(t *testing.T) {
	tr := small().MustGenerate(5000)
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	ind := tr.Indirect()
	if len(ind) != 5000 {
		t.Errorf("requested 5000 indirect branches, got %d", len(ind))
	}
}

func TestGenerateStatsMatchConfig(t *testing.T) {
	cfg := small()
	s := trace.Summarize(cfg.MustGenerate(20000))
	if math.Abs(s.InstrPerIndirect-float64(cfg.InstrPerIndirect)) > float64(cfg.InstrPerIndirect)/4 {
		t.Errorf("instr/indirect = %.1f, configured %d", s.InstrPerIndirect, cfg.InstrPerIndirect)
	}
	if math.Abs(s.CondPerIndirect-cfg.CondPerIndirect) > 1 {
		t.Errorf("cond/indirect = %.2f, configured %.2f", s.CondPerIndirect, cfg.CondPerIndirect)
	}
	if math.Abs(s.VCallFraction-cfg.VCallFrac) > 0.2 {
		t.Errorf("vcall fraction = %.2f, configured %.2f", s.VCallFraction, cfg.VCallFrac)
	}
	if s.Sites > cfg.Sites {
		t.Errorf("trace has %d sites, config allows %d", s.Sites, cfg.Sites)
	}
	if s.Sites < cfg.Sites/4 {
		t.Errorf("trace uses only %d of %d sites", s.Sites, cfg.Sites)
	}
}

func TestGenerateCondCap(t *testing.T) {
	cfg := small()
	cfg.CondPerIndirect = 500 // m88ksim-like; must be capped
	tr := cfg.MustGenerate(2000)
	s := trace.Summarize(tr)
	if s.CondPerIndirect > MaxCondRecords+1 {
		t.Errorf("cond/indirect = %.1f exceeds cap %d", s.CondPerIndirect, MaxCondRecords)
	}
	// Instruction density must still be honoured.
	if s.InstrPerIndirect < float64(cfg.InstrPerIndirect)/2 {
		t.Errorf("instr/indirect %.1f collapsed under cond cap", s.InstrPerIndirect)
	}
}

func TestGenerateReturnsPairWithCalls(t *testing.T) {
	cfg := small()
	cfg.EmitReturns = true
	tr := cfg.MustGenerate(20000)
	if tr.CountKind(trace.Return) == 0 {
		t.Fatal("EmitReturns produced no return records")
	}
	// A deep-enough return address stack must predict essentially all
	// returns (§2: returns are excluded because a RAS handles them).
	res := ras.Simulate(tr, 64)
	if res.Returns == 0 {
		t.Fatal("RAS simulation saw no returns")
	}
	if rate := res.MissRate(); rate > 1.0 {
		t.Errorf("RAS misprediction %.2f%% on properly nested trace, want ~0", rate)
	}
}

func TestGenerateNoReturnsByDefault(t *testing.T) {
	tr := small().MustGenerate(2000)
	if n := tr.CountKind(trace.Return); n != 0 {
		t.Errorf("default config emitted %d returns", n)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Sites = 0 },
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.Clusters = c.Sites + 1 },
		func(c *Config) { c.TargetsPerSite = 0.5 },
		func(c *Config) { c.Loops = 0 },
		func(c *Config) { c.LoopLenMax = 0 },
		func(c *Config) { c.MeanRepeats = 0.5 },
		func(c *Config) { c.Phases = 0 },
		func(c *Config) { c.Phases = 3; c.PhaseLen = 0 },
		func(c *Config) { c.Polymorphism = 1.5 },
		func(c *Config) { c.SharedMotifs = -0.1 },
		func(c *Config) { c.SiteReuse = 2 },
		func(c *Config) { c.RandomSiteFrac = -1 },
		func(c *Config) { c.Dominance = 1.1 },
		func(c *Config) { c.Noise = -0.2 },
		func(c *Config) { c.InstrPerIndirect = 0 },
		func(c *Config) { c.CondPerIndirect = -1 },
		func(c *Config) { c.VCallFrac = 1.2 },
	}
	for i, mod := range mods {
		cfg := small()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := cfg.Generate(100); err == nil {
			t.Errorf("Generate accepted bad config %d", i)
		}
	}
	if err := small().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic on bad config")
		}
	}()
	cfg := small()
	cfg.Sites = -1
	cfg.MustGenerate(10)
}

func TestSiteAddressesClustered(t *testing.T) {
	cfg := small()
	tr := cfg.MustGenerate(5000)
	clusters := make(map[uint32]bool)
	for _, r := range tr.Indirect() {
		if r.PC < siteBase || r.PC >= siteBase+uint32(cfg.Clusters)*clusterSize {
			t.Fatalf("site %#x outside cluster region", r.PC)
		}
		clusters[(r.PC-siteBase)/clusterSize] = true
	}
	if len(clusters) < 2 {
		t.Errorf("trace exercises only %d clusters", len(clusters))
	}
	for _, r := range tr {
		if r.Kind.Indirect() && (r.Target < targetBase || r.Target >= targetBase+targetSpan) {
			t.Fatalf("target %#x outside callee region", r.Target)
		}
	}
}

func TestTargetLowBitEntropy(t *testing.T) {
	// The paper's bit selection (§4.1) relies on target addresses varying
	// in their low-order bits: check that bits [2..10) are well spread.
	tr := small().MustGenerate(10000)
	seen := make(map[uint32]bool)
	for _, r := range tr.Indirect() {
		seen[(r.Target>>2)&0xFF] = true
	}
	if len(seen) < 16 {
		t.Errorf("targets use only %d distinct low-byte values", len(seen))
	}
}

func TestGeometricSampler(t *testing.T) {
	p, err := build(small())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += sampleGeometric(p.rng, 4)
	}
	mean := float64(sum) / n
	if mean < 3.5 || mean > 4.5 {
		t.Errorf("geometric mean %.2f, want ~4", mean)
	}
	if sampleGeometric(p.rng, 0) != 0 || sampleGeometric(p.rng, -1) != 0 {
		t.Error("non-positive mean must yield 0")
	}
}

func TestZipfPick(t *testing.T) {
	p, err := build(small())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for i := 0; i < 20000; i++ {
		counts[zipfPick(p.rng, 8)]++
	}
	if counts[0] <= counts[7] {
		t.Errorf("zipf not skewed: first=%d last=%d", counts[0], counts[7])
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("rank %d never picked", i)
		}
	}
	if zipfPick(p.rng, 1) != 0 {
		t.Error("zipfPick(1) != 0")
	}
}
