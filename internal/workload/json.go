package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the configuration, so calibrated benchmark
// definitions can be shared and versioned alongside traces.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON parses a configuration and validates it.
func ReadJSON(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("workload: parsing config: %w", err)
	}
	if c.Name == "" {
		c.Name = "custom"
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadConfig reads a benchmark configuration from a JSON file.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ReadJSON(f)
}
