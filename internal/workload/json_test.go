package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := small()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip changed config:\n%+v\n%+v", orig, back)
	}
	// Round-tripped configs generate identical traces.
	a := orig.MustGenerate(500)
	b := back.MustGenerate(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace record %d differs", i)
		}
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"Sites": -1, "Clusters": 1}`,
		`{"NoSuchField": 3}`,
	}
	for _, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("ReadJSON(%q) accepted", src)
		}
	}
}

func TestReadJSONDefaultsName(t *testing.T) {
	var buf bytes.Buffer
	cfg := small()
	cfg.Name = ""
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "custom" {
		t.Errorf("Name = %q", back.Name)
	}
}

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := small().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sites != small().Sites {
		t.Errorf("loaded %+v", cfg)
	}
	if _, err := LoadConfig("/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
}
