package workload

import "fmt"

// Meta carries the paper's published benchmark characteristics (Tables 1–2)
// for reporting and grouping. Dynamic statistics of the generated traces are
// computed by trace.Summarize; Meta records what the paper measured.
type Meta struct {
	// Description matches the paper's table entry.
	Description string
	// Language is "C++", "C" or "Beta".
	Language string
	// LinesOfCode is the static source size reported by the paper.
	LinesOfCode int
	// InstrPerIndirect and CondPerIndirect are the paper's dynamic
	// densities; the generator reproduces them (conditionals capped at
	// MaxCondRecords per indirect).
	InstrPerIndirect int
	CondPerIndirect  int
	// VCallPct is the percentage of indirect branches that are virtual
	// calls; -1 where the paper reports N/A.
	VCallPct int
	// Sites100 is the paper's count of sites covering 100% of dynamic
	// indirect branches.
	Sites100 int
	// PaperBTB is the misprediction rate (percent) of the unconstrained
	// BTB-2bc from Table A-1, the calibration anchor for the generator.
	PaperBTB float64
}

// OO reports whether the benchmark belongs to the paper's object-oriented
// suite (Table 1).
func (m Meta) OO() bool { return m.Language != "C" }

// Suite returns the 17 benchmark configurations mirroring the paper's
// Tables 1–2. Generator knobs are calibrated so each benchmark's
// unconstrained BTB-2bc misprediction rate lands near the paper's Table A-1
// value at the default trace length (see workload calibration tests).
func Suite() []Config {
	type knobs struct {
		sites, clusters, loops int
		targets, repeats       float64
		reuse, motifs, poly    float64
		randFrac, dom, noise   float64
		loopLen                float64
	}
	mk := func(name string, meta Meta, seed uint64, k knobs) Config {
		return Config{
			Name:             name,
			Meta:             meta,
			Seed:             seed,
			Sites:            k.sites,
			Clusters:         k.clusters,
			TargetsPerSite:   k.targets,
			Loops:            k.loops,
			LoopLenMax:       12,
			LoopLenMean:      k.loopLen,
			MeanRepeats:      k.repeats,
			Phases:           6,
			PhaseLen:         8000,
			Polymorphism:     k.poly,
			SharedMotifs:     k.motifs,
			SiteReuse:        k.reuse,
			RandomSiteFrac:   k.randFrac,
			Dominance:        k.dom,
			Noise:            k.noise,
			InstrPerIndirect: meta.InstrPerIndirect,
			CondPerIndirect:  float64(meta.CondPerIndirect),
			VCallFrac:        vcallFrac(meta.VCallPct),
		}
	}
	return []Config{
		// --- OO suite (Table 1) ---
		mk("idl", Meta{"SunSoft's IDL compiler (version 1.3)", "C++", 13_900, 47, 6, 93, 543, 2.40},
			101, knobs{543, 24, 160, 3, 25, 0.02, 0.05, 0.03, 0.008, 0.5, 0.001, 0}),
		mk("jhm", Meta{"Java High-level Class Modifier", "C++", 15_000, 47, 5, 94, 155, 11.13},
			102, knobs{155, 10, 60, 4, 9, 0.02, 0.06, 0.06, 0.17, 0.5, 0.002, 0}),
		mk("self", Meta{"Self-93 VM", "C++", 76_900, 56, 7, 76, 1855, 15.68},
			103, knobs{1855, 64, 300, 4, 5, 0.15, 0.30, 0.30, 0.19, 0.5, 0.003, 0}),
		mk("troff", Meta{"GNU groff version 1.09", "C++", 19_200, 90, 13, 74, 161, 13.70},
			104, knobs{161, 10, 70, 4, 4, 0.25, 0.25, 0.30, 0.12, 0.5, 0.0025, 0}),
		mk("lcom", Meta{"compiler for hardware description language", "C++", 14_100, 97, 10, 60, 328, 4.25},
			105, knobs{328, 16, 60, 3, 14, 0.03, 0.20, 0.05, 0.02, 0.5, 0.0015, 0}),
		mk("porky", Meta{"SUIF 1.0 scalar optimizer", "C++", 22_900, 138, 19, 71, 285, 20.80},
			106, knobs{285, 14, 110, 4, 1.8, 0.80, 0.40, 0.45, 0.08, 0.5, 0.0025, 0}),
		mk("ixx", Meta{"IDL parser, part of the Fresco X11R6 library", "C++", 11_600, 139, 18, 47, 203, 45.70},
			107, knobs{203, 10, 90, 8, 1.05, 1.00, 0.15, 0.95, 0.09, 0.5, 0.003, 5}),
		mk("eqn", Meta{"typesetting program for equations", "C++", 8_300, 159, 25, 34, 114, 34.78},
			108, knobs{114, 8, 60, 6, 1.2, 1.00, 0.30, 0.70, 0.21, 0.5, 0.004, 0}),
		mk("beta", Meta{"BETA compiler", "Beta", 72_500, 188, 23, -1, 376, 28.57},
			109, knobs{376, 18, 130, 5, 1.3, 1.00, 0.35, 0.70, 0.04, 0.5, 0.0025, 0}),
		// --- C suite (Table 2) ---
		mk("xlisp", Meta{"SPEC95", "C", 4_700, 69, 11, -1, 13, 13.51},
			201, knobs{13, 2, 10, 5, 4, 0.25, 0.30, 0.35, 0.00, 0.5, 0.004, 0}),
		mk("perl", Meta{"SPEC95", "C", 21_400, 113, 17, -1, 24, 31.80},
			202, knobs{24, 3, 14, 6, 2.6, 0.75, 0.35, 0.45, 0.00, 0.5, 0.001, 0}),
		mk("edg", Meta{"EDG C++ front end", "C", 114_300, 149, 23, -1, 350, 35.91},
			203, knobs{350, 16, 130, 5, 1.05, 1.00, 0.30, 0.80, 0.18, 0.5, 0.004, 0}),
		mk("gcc", Meta{"SPEC95", "C", 130_800, 176, 31, -1, 166, 65.70},
			204, knobs{166, 10, 100, 10, 1.05, 1.00, 0.10, 1.00, 0.25, 0.5, 0.005, 6}),
		// --- infrequent-indirect C suite (AVG-infreq) ---
		mk("m88ksim", Meta{"SPEC95", "C", 12_200, 1827, 233, -1, 17, 76.41},
			205, knobs{17, 2, 12, 14, 1.6, 1.00, 0.00, 1.00, 0.06, 0.5, 0.002, 10}),
		mk("vortex", Meta{"SPEC95", "C", 45_200, 3480, 525, -1, 37, 20.19},
			206, knobs{37, 4, 18, 4, 5, 0.12, 0.30, 0.30, 0.13, 0.5, 0.0025, 0}),
		mk("ijpeg", Meta{"SPEC95", "C", 16_800, 5770, 441, -1, 60, 1.26},
			207, knobs{60, 6, 24, 2.5, 30, 0.01, 0.03, 0.02, 0.00, 0.5, 0.0015, 0}),
		mk("go", Meta{"SPEC95", "C", 29_200, 56355, 7123, -1, 14, 29.25},
			208, knobs{14, 1, 10, 6, 6, 0.00, 0.12, 0.10, 0.41, 0.5, 0.004, 0}),
	}
}

// vcallFrac converts the paper's virtual-call percentage to a fraction,
// treating N/A (-1, the C programs and beta) as zero.
func vcallFrac(pct int) float64 {
	if pct < 0 {
		return 0
	}
	return float64(pct) / 100
}

// ByName returns the suite configuration with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in suite order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}
