package workload

import (
	"testing"

	"github.com/oocsb/ibp/internal/trace"
)

func TestSuiteStructure(t *testing.T) {
	s := Suite()
	if len(s) != 17 {
		t.Fatalf("suite has %d benchmarks, want 17", len(s))
	}
	names := map[string]bool{}
	var oo, c, infreq int
	for _, cfg := range s {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", cfg.Name, err)
		}
		if names[cfg.Name] {
			t.Errorf("duplicate benchmark %q", cfg.Name)
		}
		names[cfg.Name] = true
		if cfg.Meta.OO() {
			oo++
		} else {
			c++
		}
		if cfg.Meta.InstrPerIndirect > 1000 {
			infreq++
		}
		if cfg.Meta.PaperBTB <= 0 || cfg.Meta.PaperBTB >= 100 {
			t.Errorf("%s: implausible paper BTB %v", cfg.Name, cfg.Meta.PaperBTB)
		}
		if cfg.Meta.Sites100 <= 0 {
			t.Errorf("%s: missing site count", cfg.Name)
		}
	}
	// Paper groups: 9 OO-suite programs (Table 1: 8 C++ plus beta), 8 C
	// programs (Table 2), 4 of them indirect-infrequent.
	if oo != 9 || c != 8 {
		t.Errorf("language split: %d OO-suite, %d C (want 9/8)", oo, c)
	}
	if infreq != 4 {
		t.Errorf("%d infrequent benchmarks, want 4 (AVG-infreq)", infreq)
	}
}

func TestByName(t *testing.T) {
	cfg, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "gcc" || cfg.Meta.LinesOfCode != 130_800 {
		t.Errorf("unexpected gcc config: %+v", cfg.Meta)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if n := Names(); len(n) != 17 || n[0] != "idl" {
		t.Errorf("Names() = %v", n)
	}
}

// TestSuiteCharacteristics checks that the generated traces reproduce the
// Tables 1–2 benchmark characteristics: instruction density and (capped)
// conditional density per benchmark, and skewed site coverage.
func TestSuiteCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full traces")
	}
	for _, cfg := range Suite() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			s := trace.Summarize(cfg.MustGenerate(20000))
			wantInstr := float64(cfg.Meta.InstrPerIndirect)
			if s.InstrPerIndirect < wantInstr*0.6 || s.InstrPerIndirect > wantInstr*1.4 {
				t.Errorf("instr/indirect %.0f, paper %d", s.InstrPerIndirect, cfg.Meta.InstrPerIndirect)
			}
			wantCond := float64(cfg.Meta.CondPerIndirect)
			if wantCond > MaxCondRecords {
				wantCond = MaxCondRecords
			}
			if s.CondPerIndirect < wantCond*0.5-1 || s.CondPerIndirect > wantCond*1.5+1 {
				t.Errorf("cond/indirect %.1f, want ~%.0f", s.CondPerIndirect, wantCond)
			}
			if pct := cfg.Meta.VCallPct; pct >= 0 {
				got := int(100*s.VCallFraction + 0.5)
				if got < pct-25 || got > pct+25 {
					t.Errorf("vcall%% = %d, paper %d", got, pct)
				}
			}
			// Site coverage must be skewed: 90% of branches from
			// fewer sites than 100%.
			if s.Coverage[90] > s.Coverage[100] {
				t.Errorf("coverage not monotone: %v", s.Coverage)
			}
			if s.Sites > cfg.Sites {
				t.Errorf("%d sites exceed configured %d", s.Sites, cfg.Sites)
			}
		})
	}
}
