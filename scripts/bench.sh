#!/usr/bin/env bash
# Benchmark-regression snapshot: runs the go-test benchmarks (the regression
# target BenchmarkFig17HybridMatrix plus the raw predictor-throughput
# benchmarks), then folds their results together with in-process predictor
# and experiment timings into results/BENCH_<date>.json via ibpsweep
# -benchjson.
#
# Usage:
#   scripts/bench.sh [output.json]
# Environment:
#   BENCH      benchmark regexp for go test (default: fig17 + predictors)
#   BENCHTIME  go test -benchtime (default: 3x; CI smoke uses 1x)
#   RUN        experiment ids to wall-clock (default: a figure-class sample)
#   N          trace length for the experiment timings (default: 20000)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-results/BENCH_$(date +%F).json}"
mkdir -p "$(dirname "$out")"
bench="${BENCH:-^(BenchmarkFig17HybridMatrix|BenchmarkPredictor)}"
benchtime="${BENCHTIME:-3x}"
run="${RUN:-fig2,fig9,fig12,fig17}"
n="${N:-20000}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchtime "$benchtime" . | tee "$raw"

# Telemetry overhead guard: the instrumented engine (off vs on) rides along
# in the same snapshot so regressions in either mode are visible in one file.
go test -run '^$' -bench '^BenchmarkTelemetryOverhead$' -benchtime "$benchtime" \
  ./internal/sim | tee -a "$raw"

# Serve-path throughput: the loopback end-to-end benchmark (framing,
# checksums, shard hand-off, prediction, ack stream) lands in the same
# snapshot so a wire-layer regression shows up next to the engine numbers —
# untraced, with the flight recorder on, and with the predictor auto-tuner
# observing every frame, so the tracing and tuning overheads are visible in
# every snapshot.
go test -run '^$' -bench '^(BenchmarkServeLoopback|BenchmarkServeLoopbackTraced|BenchmarkServeLoopbackTuned)$' \
  -benchtime "$benchtime" ./internal/serve | tee -a "$raw"

# Cluster-path throughput: the same stream through ibprouter's full path
# (journaling, relay, a 2-backend fleet) — the router's overhead relative to
# BenchmarkServeLoopback is the number to watch — plus the backend-scaling
# ladder (1/2/4 loopback backends, one client per backend) whose records/s
# column shows how far the router is from linear scaling.
go test -run '^$' -bench '^(BenchmarkRouterLoopback|BenchmarkRouterScaling)$' \
  -benchtime "$benchtime" ./internal/cluster | tee -a "$raw"

# End-to-end loadgen: a real ibpserved process driven by ibpload over real
# sockets; its throughput and frame-latency p50/p95/p99 land in the snapshot's
# "loadgen" section. LOADGEN=0 skips it (fast local iterations).
loadflags=()
if [ "${LOADGEN:-1}" != 0 ]; then
  loadjson="$(mktemp)"
  servebin="$(mktemp)"
  trap 'rm -f "$raw" "$loadjson" "$servebin"' EXIT
  go build -o "$servebin" ./cmd/ibpserved
  "$servebin" -addr 127.0.0.1:19671 -log warn &
  served=$!
  sleep 1
  go run ./cmd/ibpload -addr 127.0.0.1:19671 -bench all -n "${LOADN:-20000}" \
    -conns "${LOADCONNS:-4}" -json > "$loadjson"
  kill "$served" 2>/dev/null || true
  wait "$served" 2>/dev/null || true
  loadflags=(-loadjson "$loadjson")
fi

go run ./cmd/ibpsweep -benchjson "$out" -benchraw "$raw" "${loadflags[@]}" -run "$run" -n "$n"
