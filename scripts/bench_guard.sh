#!/usr/bin/env bash
# Bench regression guard: re-runs the hot-path loopback benchmarks and fails
# when a records/s throughput lands more than THRESHOLD percent below the
# committed snapshot (the newest results/BENCH_*.json that carries the
# benchmark).
#
# Two benchmarks are guarded: BenchmarkServeLoopback (the serve-path
# throughput headline) and BenchmarkRouterLoopback (the same stream through
# the cluster router's journal-and-relay path). Best-of-REPS runs are
# compared, not a single sample, to keep shared-runner noise from failing
# healthy builds. A benchmark absent from every committed snapshot is skipped
# rather than failed, so the guard grows with the snapshots.
#
# Usage:
#   scripts/bench_guard.sh [reference.json]
# Environment:
#   THRESHOLD  allowed regression in percent (default 10)
#   REPS       benchmark repetitions; the best run counts (default 3)
#   BENCHTIME  go test -benchtime per rep (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${THRESHOLD:-10}"
reps="${REPS:-3}"
benchtime="${BENCHTIME:-3x}"
ref_arg="${1:-}"

# find_ref NAME: newest committed snapshot with a records/s figure for NAME.
find_ref() {
  local name="$1" f
  for f in $(ls -r results/BENCH_*.json 2>/dev/null); do
    if python3 - "$f" "$name" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
ok = any(b.get("name") == sys.argv[2] and b.get("records_per_s")
         for b in rep.get("go_test", []))
sys.exit(0 if ok else 1)
EOF
    then echo "$f"; return 0; fi
  done
  return 1
}

# guard NAME PKG: rerun NAME in PKG and compare against its snapshot.
guard() {
  local name="$1" pkg="$2" ref raw
  if [ -n "$ref_arg" ]; then
    ref="$ref_arg"
  elif ! ref="$(find_ref "$name")"; then
    echo "bench_guard: no committed snapshot with $name records/s; skipping" >&2
    return 0
  fi

  raw="$(mktemp)"
  for _ in $(seq "$reps"); do
    go test -run '^$' -bench "^${name}\$" -benchtime "$benchtime" "$pkg" | tee -a "$raw"
  done

  python3 - "$ref" "$raw" "$threshold" "$name" <<'EOF'
import json, re, sys
ref_path, raw_path, threshold, name = sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4]
rep = json.load(open(ref_path))
want = next((b["records_per_s"] for b in rep["go_test"]
             if b.get("name") == name and b.get("records_per_s")), None)
if want is None:
    print(f"bench_guard: {ref_path} has no {name} records/s; skipping")
    sys.exit(0)
best = 0.0
for line in open(raw_path):
    m = re.match(re.escape(name) + r"\S*\s.*?([\d.e+]+) records/s", line)
    if m:
        best = max(best, float(m.group(1)))
if best == 0.0:
    sys.exit(f"bench_guard: no {name} records/s sample in fresh run")
drop = 100.0 * (1.0 - best / want)
print(f"bench_guard: {name} snapshot {want:,.0f} records/s ({ref_path}), "
      f"best of fresh runs {best:,.0f} records/s ({drop:+.1f}% drop)")
if drop > threshold:
    sys.exit(f"bench_guard: {name} regressed {drop:.1f}% "
             f"(> {threshold:.0f}% allowed)")
EOF
  rm -f "$raw"
}

guard BenchmarkServeLoopback ./internal/serve
guard BenchmarkRouterLoopback ./internal/cluster
