#!/usr/bin/env bash
# Bench regression guard: re-runs BenchmarkServeLoopback and fails when its
# records/s throughput lands more than THRESHOLD percent below the committed
# snapshot (the newest results/BENCH_*.json that carries the benchmark).
#
# The serve loopback path is the PR-over-PR throughput headline, so a silent
# regression there is the one this guard exists to catch. Best-of-REPS runs
# are compared, not a single sample, to keep shared-runner noise from failing
# healthy builds.
#
# Usage:
#   scripts/bench_guard.sh [reference.json]
# Environment:
#   THRESHOLD  allowed regression in percent (default 10)
#   REPS       benchmark repetitions; the best run counts (default 3)
#   BENCHTIME  go test -benchtime per rep (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${THRESHOLD:-10}"
reps="${REPS:-3}"
benchtime="${BENCHTIME:-3x}"
ref="${1:-}"

if [ -z "$ref" ]; then
  # Newest committed snapshot that has a records/s figure for the benchmark.
  for f in $(ls -r results/BENCH_*.json 2>/dev/null); do
    if python3 - "$f" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
ok = any(b.get("name") == "BenchmarkServeLoopback" and b.get("records_per_s")
         for b in rep.get("go_test", []))
sys.exit(0 if ok else 1)
EOF
    then ref="$f"; break; fi
  done
fi
if [ -z "$ref" ]; then
  echo "bench_guard: no committed snapshot with BenchmarkServeLoopback records/s; nothing to guard" >&2
  exit 0
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
for _ in $(seq "$reps"); do
  go test -run '^$' -bench '^BenchmarkServeLoopback$' -benchtime "$benchtime" \
    ./internal/serve | tee -a "$raw"
done

python3 - "$ref" "$raw" "$threshold" <<'EOF'
import json, re, sys
ref_path, raw_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
rep = json.load(open(ref_path))
want = next(b["records_per_s"] for b in rep["go_test"]
            if b.get("name") == "BenchmarkServeLoopback" and b.get("records_per_s"))
best = 0.0
for line in open(raw_path):
    m = re.match(r"BenchmarkServeLoopback\S*\s.*?([\d.e+]+) records/s", line)
    if m:
        best = max(best, float(m.group(1)))
if best == 0.0:
    sys.exit("bench_guard: no records/s sample in fresh run")
drop = 100.0 * (1.0 - best / want)
print(f"bench_guard: snapshot {want:,.0f} records/s ({ref_path}), "
      f"best of fresh runs {best:,.0f} records/s ({drop:+.1f}% drop)")
if drop > threshold:
    sys.exit(f"bench_guard: BenchmarkServeLoopback regressed {drop:.1f}% "
             f"(> {threshold:.0f}% allowed)")
EOF
