#!/usr/bin/env bash
# Failover smoke: a real two-backend fleet behind a real ibprouter, driven
# by ibpload -router, with one backend SIGKILLed mid-run. Passes only if
# zero sessions were lost (every summary still bit-identical, "failed": 0)
# and the kill actually exercised the journal-replay path (failovers >= 1).
#
# Usage:
#   scripts/failover_smoke.sh [artifact-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-failover-artifacts}"
mkdir -p "$dir"

go build -o "$dir/ibpserved" ./cmd/ibpserved
go build -o "$dir/ibprouter" ./cmd/ibprouter
go build -o "$dir/ibpload" ./cmd/ibpload

"$dir/ibpserved" -addr 127.0.0.1:19770 -tag b1 -log warn &
B1=$!
"$dir/ibpserved" -addr 127.0.0.1:19771 -tag b2 -log warn &
B2=$!
"$dir/ibprouter" -addr 127.0.0.1:19780 \
  -backends 127.0.0.1:19770,127.0.0.1:19771 \
  -probe 250ms -fails 2 -log warn \
  -summaryjson "$dir/router-summary.json" &
ROUTER=$!
cleanup() {
  kill "$B1" "$B2" "$ROUTER" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT
sleep 1

# Small frames keep each session streaming long enough for the kill to land
# mid-session; the killer waits until the load is in full flight.
( sleep 2; echo "failover_smoke: SIGKILL backend b1 (pid $B1)"; kill -KILL "$B1" ) &
KILLER=$!

"$dir/ibpload" -addr 127.0.0.1:19780 -router -bench all -n 60000 -frame 128 \
  -conns 8 -json > "$dir/load-report.json"
wait "$KILLER"

# The router drains cleanly even with a dead backend in the membership.
kill -TERM "$ROUTER"
wait "$ROUTER"

python3 - "$dir/load-report.json" "$dir/router-summary.json" <<'EOF'
import json, sys
load = json.load(open(sys.argv[1]))
router = json.load(open(sys.argv[2]))
assert load["failed"] == 0, f'lost sessions: {load["failed"]}'
assert load["failovers"] >= 1, f'kill did not exercise failover: {load["failovers"]}'
assert all(b.get("backend") for b in load["benchmarks"]), "a summary lacked placement info"
assert router["graceful"], "router drain was not graceful"
metrics = router.get("metrics") or {}
assert metrics.get("router_replay_lost_total", 0) == 0, "a journal replay was lost"
assert metrics.get("router_failovers_total", 0) >= 1, "router counted no failovers"
print(f'failover smoke OK: {load["failovers"]} failovers, '
      f'{load["replayedFrames"]} frames replayed, 0 of {len(load["benchmarks"])} sessions lost')
EOF
