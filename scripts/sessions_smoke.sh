#!/usr/bin/env bash
# Sessions smoke: the live introspection plane end to end with real
# processes. A two-backend fleet behind ibprouter (with -backendmetrics so
# the router fans in backend /sessions), driven by a long-lived ibpload run;
# while the load is in flight the script
#
#   1. streams /sessions/stream?ticks=3 off the router and asserts every
#      live session produced at least one delta line with movement,
#   2. runs ibptop -once -json against the router and asserts each session
#      is attributed to a real backend,
#   3. cross-checks that attribution against the router's own proxy view
#      (/sessions/local) via the RouterSession/upstream correlation key,
#   4. pulls /sessions/{id} for one session and checks the detail shape.
#
# Usage:
#   scripts/sessions_smoke.sh [artifact-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-sessions-artifacts}"
mkdir -p "$dir"

go build -o "$dir/ibpserved" ./cmd/ibpserved
go build -o "$dir/ibprouter" ./cmd/ibprouter
go build -o "$dir/ibpload" ./cmd/ibpload
go build -o "$dir/ibptop" ./cmd/ibptop

B1_ADDR=127.0.0.1:19870 B1_METRICS=127.0.0.1:19871
B2_ADDR=127.0.0.1:19872 B2_METRICS=127.0.0.1:19873
ROUTER_ADDR=127.0.0.1:19880 ROUTER_METRICS=127.0.0.1:19881

"$dir/ibpserved" -addr "$B1_ADDR" -metrics "$B1_METRICS" -tag b1 -log warn &
B1=$!
"$dir/ibpserved" -addr "$B2_ADDR" -metrics "$B2_METRICS" -tag b2 -log warn &
B2=$!
"$dir/ibprouter" -addr "$ROUTER_ADDR" -metrics "$ROUTER_METRICS" \
  -backends "$B1_ADDR,$B2_ADDR" \
  -backendmetrics "$B1_METRICS,$B2_METRICS" \
  -probe 250ms -log warn &
ROUTER=$!
cleanup() {
  kill "$B1" "$B2" "$ROUTER" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT
sleep 1

# Long-lived sessions: small frames and a big record count keep every
# connection streaming while the plane is sampled.
"$dir/ibpload" -addr "$ROUTER_ADDR" -router -bench all -n 200000 -frame 64 \
  -conns 6 -tenant smoke -json > "$dir/load-report.json" &
LOAD=$!

# Wait until the router actually tracks live sessions.
for _ in $(seq 50); do
  n=$(curl -fsS "http://$ROUTER_METRICS/sessions/local" | python3 -c \
    'import json,sys; print(len(json.load(sys.stdin)["sessions"]))' || echo 0)
  [ "${n:-0}" -ge 1 ] && break
  sleep 0.2
done

# 1. Three stream ticks off the cluster fan-in view.
curl -fsS "http://$ROUTER_METRICS/sessions/stream?ticks=3&interval=500ms&sort=rps" \
  > "$dir/stream.ndjson"

# 2. One ibptop snapshot (machine-readable).
"$dir/ibptop" -addr "$ROUTER_METRICS" -once -json > "$dir/ibptop.json"

# 3. The router's own proxy view for the cross-check.
curl -fsS "http://$ROUTER_METRICS/sessions/local" > "$dir/router-local.json"

# 4. One session detail off a backend (tables + window live here).
first_backend_session=$(curl -fsS "http://$B1_METRICS/sessions" | python3 -c \
  'import json,sys; s=json.load(sys.stdin)["sessions"]; print(s[0]["id"] if s else "")')
if [ -n "$first_backend_session" ]; then
  curl -fsS "http://$B1_METRICS/sessions/$first_backend_session" > "$dir/session-detail.json"
fi

wait "$LOAD"

python3 - "$dir" "$B1_ADDR" "$B2_ADDR" <<'EOF'
import json, sys
d, b1, b2 = sys.argv[1], sys.argv[2], sys.argv[3]

# Stream: >= 3 ticks, and every session that appeared had a delta line with
# movement in at least one tick (the load never idles mid-run).
ticks, lines = 0, []
for raw in open(f"{d}/stream.ndjson"):
    raw = raw.strip()
    if raw:
        lines.append(json.loads(raw))
ticks = sum(1 for l in lines if l["type"] == "tick")
assert ticks == 3, f"stream produced {ticks} ticks, want 3"
moved, seen = set(), set()
for l in lines:
    if l["type"] != "session":
        continue
    sid = (l["session"].get("backend", ""), l["session"]["id"])
    seen.add(sid)
    if l["delta"]["records"] > 0:
        moved.add(sid)
assert seen, "stream carried no session lines"
assert moved == seen, f"sessions without any stream delta: {seen - moved}"
stats = [l for l in lines if l["type"] == "stats"]
assert stats and any(s["delta"] for s in stats), "no telemetry deltas fused into the stream"

# ibptop -once -json: every serve-side session attributed to a real backend.
top = json.load(open(f"{d}/ibptop.json"))
assert top["tick"]["sessions"] >= 1, "ibptop saw no sessions"
backends = {b["addr"]: b for b in top["tick"]["backends"]}
assert set(backends) == {b1, b2}, f"ibptop backends {set(backends)}"
serve_rows = [s["session"] for s in top["sessions"] if s["session"]["kind"] == "serve"]
assert serve_rows, "ibptop has no merged serve sessions"
for s in serve_rows:
    assert s["backend"] in (b1, b2), f'session {s["id"]} attributed to {s["backend"]!r}'
    assert s["tenant"] == "smoke", f'session {s["id"]} lost its tenant tag'

# Cross-check: each merged row's upstream id exists in the router's own
# proxy registry, and the proxy agrees on the backend placement.
local = json.load(open(f"{d}/router-local.json"))
proxies = {p["id"]: p for p in local["sessions"]}
checked = 0
for s in serve_rows:
    up = s.get("upstream", 0)
    if up in proxies:
        p = proxies[up]
        assert p.get("backend") in ("", s["backend"]), \
            f'proxy {up} says {p.get("backend")!r}, fan-in says {s["backend"]!r}'
        checked += 1
assert checked >= 1, "no merged session could be cross-checked against the proxy view"

# Session detail: window stats and identity present.
try:
    det = json.load(open(f"{d}/session-detail.json"))
    assert det["win"]["seconds"] > 0 and det["state"], "detail missing window stats"
except FileNotFoundError:
    pass  # backend b1 happened to hold no session when sampled

load = json.load(open(f"{d}/load-report.json"))
assert load["failed"] == 0, f'load lost sessions: {load["failed"]}'
print(f"sessions smoke OK: {ticks} ticks, {len(seen)} streamed sessions, "
      f"{len(serve_rows)} ibptop rows attributed, {checked} cross-checked")
EOF
