#!/usr/bin/env bash
# Tracing smoke: a two-backend fleet behind ibprouter, every process running
# its flight recorder, driven by ibpload with a pinned trace ID and a
# client-side trace dump — with one backend SIGKILLed mid-run to prove the
# trace layer survives failover. Passes only if:
#
#   - the load run loses zero sessions (tracing must not break failover),
#   - the backend's /metrics exposes a server-side p99 frame latency,
#   - the /debug/flightrecorder dumps of the router and the surviving
#     backend fuse with the client dump into one Perfetto timeline in which
#     a single frame carries >= 6 named hops across >= 2 processes.
#
# Usage:
#   scripts/trace_smoke.sh [artifact-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-trace-artifacts}"
mkdir -p "$dir"

go build -o "$dir/ibpserved" ./cmd/ibpserved
go build -o "$dir/ibprouter" ./cmd/ibprouter
go build -o "$dir/ibpload" ./cmd/ibpload
go build -o "$dir/ibpreport" ./cmd/ibpreport

"$dir/ibpserved" -addr 127.0.0.1:19870 -tag b1 -log warn \
  -flightrecorder 4096 -slo 250ms -metrics 127.0.0.1:19970 &
B1=$!
"$dir/ibpserved" -addr 127.0.0.1:19871 -tag b2 -log warn \
  -flightrecorder 4096 -slo 250ms -metrics 127.0.0.1:19971 &
B2=$!
"$dir/ibprouter" -addr 127.0.0.1:19880 \
  -backends 127.0.0.1:19870,127.0.0.1:19871 \
  -probe 250ms -fails 2 -log warn \
  -flightrecorder 4096 -slo 500ms -metrics 127.0.0.1:19980 &
ROUTER=$!
cleanup() {
  kill "$B1" "$B2" "$ROUTER" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT
sleep 1

( sleep 2; echo "trace_smoke: SIGKILL backend b1 (pid $B1)"; kill -KILL "$B1" ) &
KILLER=$!

"$dir/ibpload" -addr 127.0.0.1:19880 -router -bench all -n 60000 -frame 128 \
  -conns 8 -traceid smoke -tracedump "$dir/load-flight.json" -json \
  > "$dir/load-report.json"
wait "$KILLER"

# Dump the live recorders before draining anything.
curl -fsS 127.0.0.1:19980/debug/flightrecorder > "$dir/router-flight.json"
curl -fsS 127.0.0.1:19971/debug/flightrecorder > "$dir/backend-flight.json"
curl -fsS 127.0.0.1:19971/metrics > "$dir/backend-metrics.txt"

kill -TERM "$ROUTER"
wait "$ROUTER"

grep -q '^serve_frame_latency_p99_ns ' "$dir/backend-metrics.txt" \
  || { echo "trace_smoke: /metrics lacks serve_frame_latency_p99_ns" >&2; exit 1; }
grep -q '^# TYPE serve_frame_latency histogram$' "$dir/backend-metrics.txt" \
  || { echo "trace_smoke: /metrics lacks the serve_frame_latency histogram" >&2; exit 1; }

"$dir/ibpreport" \
  -flight "$dir/router-flight.json,$dir/backend-flight.json,$dir/load-flight.json" \
  -o "$dir/frames.trace.json"

python3 - "$dir/load-report.json" "$dir/frames.trace.json" <<'EOF'
import json, sys
load = json.load(open(sys.argv[1]))
assert load["failed"] == 0, f'lost sessions: {load["failed"]}'
assert load["failovers"] >= 1, f'kill did not exercise failover: {load["failovers"]}'
assert load.get("hops"), "load report lacks the per-hop latency breakdown"

trace = json.load(open(sys.argv[2]))
frames = {}  # (traceId, seq) -> {hop names}, {pids}
for ev in trace["traceEvents"]:
    if ev.get("ph") != "i":
        continue
    key = (ev["args"]["traceId"], ev["args"]["seq"])
    hops, pids = frames.setdefault(key, (set(), set()))
    hops.add(ev["name"])
    pids.add(ev["pid"])
best = max(frames.items(), key=lambda kv: (len(kv[1][0]), len(kv[1][1])))
(tid, seq), (hops, pids) = best
assert len(hops) >= 6 and len(pids) >= 2, \
    f"best fused frame {tid}#{seq} has hops {sorted(hops)} across {len(pids)} processes"
assert any(k[0].startswith("smoke-") for k in frames), "pinned trace IDs did not propagate"
print(f"trace smoke OK: frame {tid}#{seq} fused with {len(hops)} hops "
      f"({', '.join(sorted(hops))}) across {len(pids)} processes; "
      f"{len(frames)} frames on the timeline")
EOF
