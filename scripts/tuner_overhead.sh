#!/usr/bin/env bash
# Tuner overhead guard: runs the serve loopback benchmark untuned
# (BenchmarkServeLoopback) and with the adaptation plane observing every
# frame (BenchmarkServeLoopbackTuned — thresholds set so no swap fires, i.e.
# the steady-state price of -tuner) and fails when tuning costs more than
# MAX_OVERHEAD percent of records/s throughput. Best-of-REPS on both sides
# keeps runner noise from failing healthy builds.
#
# Usage:
#   scripts/tuner_overhead.sh
# Environment:
#   MAX_OVERHEAD  allowed throughput cost in percent (default 5)
#   REPS          repetitions per benchmark; the best run counts (default 3)
#   BENCHTIME     go test -benchtime per rep (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

max="${MAX_OVERHEAD:-5}"
reps="${REPS:-3}"
benchtime="${BENCHTIME:-3x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
for _ in $(seq "$reps"); do
  go test -run '^$' -bench '^(BenchmarkServeLoopback|BenchmarkServeLoopbackTuned)$' \
    -benchtime "$benchtime" ./internal/serve | tee -a "$raw"
done

python3 - "$raw" "$max" <<'EOF'
import re, sys
raw_path, max_overhead = sys.argv[1], float(sys.argv[2])
best = {"BenchmarkServeLoopback": 0.0, "BenchmarkServeLoopbackTuned": 0.0}
for line in open(raw_path):
    m = re.match(r"(BenchmarkServeLoopback(?:Tuned)?)-?\S*\s.*?([\d.e+]+) records/s", line)
    if m:
        name, v = m.group(1), float(m.group(2))
        best[name] = max(best[name], v)
off, on = best["BenchmarkServeLoopback"], best["BenchmarkServeLoopbackTuned"]
if off == 0.0 or on == 0.0:
    sys.exit("tuner_overhead: missing records/s samples")
overhead = 100.0 * (1.0 - on / off)
print(f"tuner_overhead: untuned {off:,.0f} records/s, tuned {on:,.0f} records/s "
      f"({overhead:+.1f}% cost)")
if overhead > max_overhead:
    sys.exit(f"tuner_overhead: the adaptation plane costs {overhead:.1f}% "
             f"(> {max_overhead:.0f}% allowed)")
EOF
