#!/usr/bin/env bash
# Tuner smoke: the adaptation plane end to end with real processes. A
# two-backend tuned fleet (-tuner) behind ibprouter with a pinned
# -tunerpolicy, driven by ibpload across the workload suite, with one
# backend SIGKILLed mid-run. Passes only if
#
#   1. at least one session escalated (its summary reports an ittage
#      predictor and the surviving backend counted tuner_escalations_total),
#   2. zero sessions were lost across the kill,
#   3. a rerun of the identical load lands bit-identical summaries —
#      executed/misses/predictor per benchmark — proving tuner decisions are
#      functions of the record stream, not of failovers or wall clock,
#   4. POST /sessions/{id}/retune against a live tuned session is accepted
#      (the forced-decision admin verb works over real HTTP).
#
# Usage:
#   scripts/tuner_smoke.sh [artifact-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

dir="${1:-tuner-artifacts}"
mkdir -p "$dir"

go build -o "$dir/ibpserved" ./cmd/ibpserved
go build -o "$dir/ibprouter" ./cmd/ibprouter
go build -o "$dir/ibpload" ./cmd/ibpload

B1_ADDR=127.0.0.1:19970 B1_METRICS=127.0.0.1:19971
B2_ADDR=127.0.0.1:19972 B2_METRICS=127.0.0.1:19973
ROUTER_ADDR=127.0.0.1:19980 ROUTER_METRICS=127.0.0.1:19981

# Escalate on the first 256-branch window with >= 2% misses; swaps=2 leaves
# budget for the forced-retune exercise after the policy's own escalation.
POLICY="warmup=0;interval=256;miss=0.02;low=0.001;hyst=1;swaps=2;coldmax=1;target=ittage:8,512,2"

"$dir/ibpserved" -addr "$B1_ADDR" -metrics "$B1_METRICS" -tuner -tag b1 -log warn \
  -summaryjson "$dir/b1-summary.json" &
B1=$!
"$dir/ibpserved" -addr "$B2_ADDR" -metrics "$B2_METRICS" -tuner -tag b2 -log warn \
  -summaryjson "$dir/b2-summary.json" &
B2=$!
"$dir/ibprouter" -addr "$ROUTER_ADDR" -metrics "$ROUTER_METRICS" \
  -backends "$B1_ADDR,$B2_ADDR" \
  -backendmetrics "$B1_METRICS,$B2_METRICS" \
  -tunerpolicy "$POLICY" \
  -probe 250ms -fails 2 -log warn \
  -summaryjson "$dir/router-summary.json" &
ROUTER=$!
cleanup() {
  kill "$B1" "$B2" "$ROUTER" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT
sleep 1

# Run 1: the suite through the tuned fleet, with b1 SIGKILLed mid-run. The
# pinned policy escalates every real workload (their miss rates are far
# above 2%), so the kill lands on sessions that already hot-swapped and the
# replacement backend must reproduce the swaps from the journal alone.
( sleep 2; echo "tuner_smoke: SIGKILL backend b1 (pid $B1)"; kill -KILL "$B1" ) &
KILLER=$!
"$dir/ibpload" -addr "$ROUTER_ADDR" -router -bench all -n 60000 -frame 128 \
  -conns 8 -json > "$dir/load-report.json"
wait "$KILLER"

# Run 2: the identical load against the degraded fleet. Determinism demands
# summaries bit-identical to run 1 — same escalations at the same windows —
# even though run 1 crossed a failover and run 2 did not.
"$dir/ibpload" -addr "$ROUTER_ADDR" -router -bench all -n 60000 -frame 128 \
  -conns 8 -json > "$dir/load-report2.json"

# Forced-retune exercise: park a long-lived session on the survivor, find it
# in /sessions, and POST the admin verb at it.
"$dir/ibpload" -addr "$ROUTER_ADDR" -router -bench gcc -n 400000 -frame 64 \
  -conns 1 -json > "$dir/load-retune.json" &
LOAD=$!
retuned=""
for _ in $(seq 100); do
  id=$(curl -fsS "http://$B2_METRICS/sessions" 2>/dev/null | python3 -c '
import json, sys
for s in json.load(sys.stdin)["sessions"]:
    if s["kind"] == "serve" and s["state"] == "active":
        print(s["id"]); break
' || true)
  if [ -n "$id" ]; then
    ok=$(curl -fsS -X POST "http://$B2_METRICS/sessions/$id/retune" | python3 -c \
      'import json,sys; print(json.load(sys.stdin)["ok"])' || echo False)
    if [ "$ok" = "True" ]; then retuned="yes"; break; fi
  fi
  sleep 0.1
done
wait "$LOAD"
[ -n "$retuned" ] || { echo "tuner_smoke: no live session accepted a forced retune" >&2; exit 1; }

# Drain the fleet so the backend summaries (with tuner_* metrics) flush.
kill -TERM "$ROUTER"; wait "$ROUTER"
kill -TERM "$B2"
for _ in $(seq 100); do kill -0 "$B2" 2>/dev/null || break; sleep 0.1; done

python3 - "$dir" <<'EOF'
import json, sys
dir = sys.argv[1]
run1 = json.load(open(f"{dir}/load-report.json"))
run2 = json.load(open(f"{dir}/load-report2.json"))
router = json.load(open(f"{dir}/router-summary.json"))
b2 = json.load(open(f"{dir}/b2-summary.json"))

assert run1["failed"] == 0, f'run 1 lost sessions: {run1["failed"]}'
assert run2["failed"] == 0, f'run 2 lost sessions: {run2["failed"]}'
assert run1["failovers"] >= 1, f'kill did not exercise failover: {run1["failovers"]}'

esc = [b["benchmark"] for b in run1["benchmarks"] if b["predictor"].startswith("ittage")]
assert esc, "no session finished on the escalation target"

by1 = {b["benchmark"]: b for b in run1["benchmarks"]}
by2 = {b["benchmark"]: b for b in run2["benchmarks"]}
assert by1.keys() == by2.keys(), "benchmark sets differ between runs"
for name, a in by1.items():
    b = by2[name]
    for k in ("predictor", "executed", "misses", "missRate"):
        assert a[k] == b[k], f"{name}: {k} diverged across runs: {a[k]} vs {b[k]}"

metrics = b2.get("metrics") or {}
assert metrics.get("tuner_escalations_total", 0) >= 1, "survivor counted no escalations"
assert metrics.get("tuner_swap_failed_total", 0) == 0, "a swap failed"
rmetrics = router.get("metrics") or {}
assert rmetrics.get("router_replay_lost_total", 0) == 0, "a journal replay was lost"

print(f"tuner smoke OK: {len(esc)}/{len(by1)} sessions escalated to ittage, "
      f'{run1["failovers"]} failovers, summaries bit-identical across runs, '
      f'{metrics.get("tuner_swaps_total", 0)} swaps on the survivor')
EOF
